// Serving observability: the SLO instruments on the /metrics registry, the
// request-lifecycle trace tracks, and the exact-nanosecond latency recorder
// the bench harness uses.
//
// The metrics histograms are the production SLO surface (queue wait, batch
// fill, per-request seconds at p50/p99 via Snapshot quantiles). They are
// log2-bucketed, which is deliberate (exact deterministic merges) but too
// coarse to resolve a sub-microsecond p99 bound — a 500ns value lands in a
// bucket whose representative is ~674ns. The acceptance gate "fast-tier p99
// under 10x the distilled per-prediction cost" therefore reads the exact
// LatencyRecorder samples instead.
package serve

import (
	"sort"
	"sync/atomic"

	"voyager/internal/metrics"
	"voyager/internal/tracing"
)

// serveObs bundles every instrument the server records into. All fields are
// nil-safe no-ops when metrics/tracing are disabled, per the repo-wide
// pattern: call sites never nil-check.
type serveObs struct {
	requests  *metrics.Counter // total predict requests
	modelReqs *metrics.Counter // answered by the model tier
	fastReqs  *metrics.Counter // answered by the fast tier
	errors    *metrics.Counter // protocol/shutdown errors sent to clients

	batches    *metrics.Counter // PredictBatch calls
	batchRows  *metrics.Counter // total rows across batches (exact fill = rows/batches)
	tierCounts [3]*metrics.Counter

	janitorPasses *metrics.Counter // idle-eviction sweeps completed

	conns        *metrics.Gauge
	traceDropped *metrics.Gauge // span-arena drops, mirrored from the tracer

	queueWait *metrics.Histogram // seconds from enqueue to batch start
	batchFill *metrics.Histogram // rows per PredictBatch call
	reqSec    *metrics.Histogram // model-tier request service seconds
	fastSec   *metrics.Histogram // fast-tier request service seconds

	tracer  *tracing.Tracer
	batchTk *tracing.Track
	// rpcBatchTk carries the batcher's async marks for traced requests.
	// It lives under the shared "rpc" process name: tracing.Merge unifies
	// processes by name, so these marks land in the client's async spans.
	rpcBatchTk *tracing.Track
}

func newServeObs(reg *metrics.Registry, tr *tracing.Tracer) *serveObs {
	o := &serveObs{
		requests:  reg.Counter("serve_requests_total"),
		modelReqs: reg.Counter("serve_requests_model_total"),
		fastReqs:  reg.Counter("serve_requests_fast_total"),
		errors:    reg.Counter("serve_errors_total"),
		batches:       reg.Counter("serve_batches_total"),
		batchRows:     reg.Counter("serve_batch_rows_total"),
		janitorPasses: reg.Counter("serve_janitor_passes_total"),
		conns:         reg.Gauge("serve_conns_active"),
		traceDropped:  reg.Gauge("tracing_dropped_events"),
		queueWait: reg.Histogram("serve_queue_wait_seconds"),
		batchFill: reg.Histogram("serve_batch_rows"),
		reqSec:    reg.Histogram("serve_request_seconds"),
		fastSec:   reg.Histogram("serve_fast_request_seconds"),
		tracer:     tr,
		batchTk:    tr.Track("prefetchd", "batcher"),
		rpcBatchTk: tr.Track("rpc", "batcher"),
	}
	for i := range o.tierCounts {
		o.tierCounts[i] = reg.Counter("serve_fast_tier_" + tierName(i) + "_total")
	}
	return o
}

func tierName(i int) string {
	switch i {
	case 0:
		return "context"
	case 1:
		return "markov"
	default:
		return "miss"
	}
}

// connTrack returns the timeline row for one connection handler. Track
// creation is data-dependent here (connection arrival order), which is fine
// for a wall-clock server timeline — serving traces are diagnostic, not
// byte-compared.
// Tracks are single-writer, so each connection needs its own; beyond this
// many, later connections go untraced rather than sharing (and racing on) a
// row.
const maxConnTracks = 999

func (o *serveObs) connTrack(connID uint64) *tracing.Track {
	if o.tracer == nil || connID > maxConnTracks {
		return nil
	}
	return o.tracer.Track("prefetchd", connThreadName(connID))
}

// rpcTrack is the per-connection timeline for trace-context request marks,
// under the merge-unified "rpc" process name (see rpcBatchTk). Created
// lazily on a connection's first traced request so untraced serving adds no
// tracks.
func (o *serveObs) rpcTrack(connID uint64) *tracing.Track {
	if o.tracer == nil || connID > maxConnTracks {
		return nil
	}
	return o.tracer.Track("rpc", connThreadName(connID))
}

func connThreadName(id uint64) string {
	const digits = "0123456789"
	var b [12]byte
	copy(b[:], "conn-")
	n := 5
	if id >= 100 {
		b[n] = digits[id/100%10]
		n++
	}
	if id >= 10 {
		b[n] = digits[id/10%10]
		n++
	}
	b[n] = digits[id%10]
	return string(b[:n+1])
}

// LatencyRecorder collects exact per-request latencies (nanoseconds) into a
// preallocated bounded buffer. Recording is lock-free: a slot index is
// claimed atomically and the slot written plainly, so concurrent handlers
// never contend beyond one atomic add. Samples past the capacity are
// counted but dropped. Read the samples only after the server has quiesced
// (Close returned); the happens-before edge is the handler WaitGroup join.
type LatencyRecorder struct {
	samples []int64
	n       atomic.Int64
}

// NewLatencyRecorder returns a recorder holding up to capacity samples.
func NewLatencyRecorder(capacity int) *LatencyRecorder {
	return &LatencyRecorder{samples: make([]int64, capacity)}
}

// record claims the next slot (nil-safe, allocation-free).
func (r *LatencyRecorder) record(ns int64) {
	if r == nil {
		return
	}
	i := r.n.Add(1) - 1
	if int(i) < len(r.samples) {
		r.samples[i] = ns
	}
}

// Count returns how many latencies were recorded (including dropped ones).
func (r *LatencyRecorder) Count() int64 {
	if r == nil {
		return 0
	}
	return r.n.Load()
}

// Samples returns the retained samples (aliases internal storage; do not
// call while the server is still recording).
func (r *LatencyRecorder) Samples() []int64 {
	if r == nil {
		return nil
	}
	n := int(r.n.Load())
	if n > len(r.samples) {
		n = len(r.samples)
	}
	return r.samples[:n]
}

// Quantile returns the exact q-quantile (nearest-rank) of the retained
// samples, 0 when empty. Sorts a copy; call after the run.
func (r *LatencyRecorder) Quantile(q float64) int64 {
	s := r.Samples()
	if len(s) == 0 {
		return 0
	}
	cp := make([]int64, len(s))
	copy(cp, s)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	rank := int(q*float64(len(cp))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(cp) {
		rank = len(cp) - 1
	}
	return cp[rank]
}

package serve

import (
	"bufio"
	"encoding/binary"
	"net"
	"path/filepath"
	"testing"
	"time"

	"voyager/internal/metrics"
	"voyager/internal/tracing"
)

// TestMalformedFrameIsolatedToConnection: a client sending garbage gets an
// error response and its connection closed; the daemon and other
// connections keep serving. This is the live-daemon counterpart of the
// decoder fuzz target.
func TestMalformedFrameIsolatedToConnection(t *testing.T) {
	fixture(t)
	s := startServer(t, Config{Model: fx.p.Model})
	addr := s.Addr().String()

	// A healthy connection established before the attack...
	healthy, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = healthy.Close() }()

	// ...a connection that sends a correctly-framed but malformed payload
	// (bad version) and must get a status-error reply, then EOF...
	bad, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	payload := EncodeRequest(nil, Request{Op: OpPredict})
	payload[4] = 99 // corrupt the version byte
	if _, err := bad.Write(payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	br := bufio.NewReader(bad)
	respPayload, err := ReadFrame(br, nil)
	if err != nil {
		t.Fatalf("malformed frame got no error response: %v", err)
	}
	var resp Response
	if err := DecodeResponse(respPayload, &resp); err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if resp.Status != StatusError {
		t.Fatalf("status %d, want StatusError", resp.Status)
	}
	if _, err := ReadFrame(br, nil); err == nil {
		t.Fatal("connection stayed open after protocol error")
	}
	_ = bad.Close()

	// ...and a connection whose hostile length prefix (1 GiB) must be cut
	// off without a response and without touching the daemon.
	hostile, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	if _, err := hostile.Write(hdr[:]); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := bufio.NewReader(hostile).ReadByte(); err == nil {
		t.Fatal("oversized-length connection got a byte back, want close")
	}
	_ = hostile.Close()

	// The healthy connection — and a brand new one — still serve.
	if err := healthy.Ping(); err != nil {
		t.Fatalf("healthy conn broken by another conn's garbage: %v", err)
	}
	a := fx.tr.Accesses[0]
	if _, err := healthy.Predict(1, a.PC, a.Addr, false); err != nil {
		t.Fatalf("healthy conn predict: %v", err)
	}
	fresh, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial after attack: %v", err)
	}
	if err := fresh.Ping(); err != nil {
		t.Fatalf("fresh conn: %v", err)
	}
	_ = fresh.Close()
}

// TestIdleSessionEviction: sessions idle past IdleTimeout are evicted by
// the janitor (count drops, metric increments); OpClose drops them
// immediately; and a fresh request after eviction transparently restarts
// the stream's context.
func TestIdleSessionEviction(t *testing.T) {
	fixture(t)
	reg := metrics.NewRegistry()
	s := startServer(t, Config{
		Model:       fx.p.Model,
		Table:       fx.tab,
		IdleTimeout: 20 * time.Millisecond,
		Metrics:     reg,
	})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = cl.Close() }()

	a := fx.tr.Accesses[0]
	for id := uint64(0); id < 3; id++ {
		if _, err := cl.Predict(id, a.PC, a.Addr, true); err != nil {
			t.Fatalf("predict: %v", err)
		}
	}
	if got := s.Sessions(); got != 3 {
		t.Fatalf("sessions = %d, want 3", got)
	}
	if err := cl.CloseStream(2); err != nil {
		t.Fatalf("CloseStream: %v", err)
	}
	if got := s.Sessions(); got != 2 {
		t.Fatalf("sessions after OpClose = %d, want 2", got)
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.Sessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("janitor never evicted: %d sessions still live", s.Sessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := reg.Counter("serve_sessions_evicted_total").Value(); got != 2 {
		t.Fatalf("evicted counter = %d, want 2", got)
	}

	// The evicted stream serves again from a fresh context: its first
	// response must equal any first-access response (stream restart
	// semantics), which the fast differential pins as off.Access(0, a).
	r, err := cl.Predict(0, a.PC, a.Addr, true)
	if err != nil {
		t.Fatalf("predict after eviction: %v", err)
	}
	if r.Status != StatusOK {
		t.Fatalf("status %d after eviction", r.Status)
	}
	if got := s.Sessions(); got != 1 {
		t.Fatalf("sessions after revival = %d, want 1", got)
	}
}

// TestServeMetricsSurface: the SLO instruments land on the registry with
// plausible values after real traffic, and the traced request lifecycle
// exports a validator-clean timeline.
func TestServeMetricsSurface(t *testing.T) {
	fixture(t)
	reg := metrics.NewRegistry()
	tracer := tracing.New(tracing.Options{Path: filepath.Join(t.TempDir(), "spans.json")})
	s := startServer(t, Config{
		Model:    fx.p.Model,
		Table:    fx.tab,
		MaxBatch: 4,
		Metrics:  reg,
		Tracer:   tracer,
	})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = cl.Close() }()
	const reqs = 20
	for j := 0; j < reqs; j++ {
		a := fx.tr.Accesses[j]
		if _, err := cl.Predict(5, a.PC, a.Addr, j%2 == 0); err != nil {
			t.Fatalf("predict %d: %v", j, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Close validates the exported timeline (nesting, pairing) itself.
	if err := tracer.Close(); err != nil {
		t.Fatalf("tracer export not validator-clean: %v", err)
	}
	if got := reg.Counter("serve_requests_total").Value(); got != reqs {
		t.Fatalf("serve_requests_total = %d, want %d", got, reqs)
	}
	fastN := reg.Counter("serve_requests_fast_total").Value()
	modelN := reg.Counter("serve_requests_model_total").Value()
	if fastN != reqs/2 || modelN != reqs/2 {
		t.Fatalf("tier split fast=%d model=%d, want %d each", fastN, modelN, reqs/2)
	}
	batches := reg.Counter("serve_batches_total").Value()
	rows := reg.Counter("serve_batch_rows_total").Value()
	if batches == 0 || rows != modelN {
		t.Fatalf("batches=%d rows=%d, want rows == model requests %d", batches, rows, modelN)
	}
	if reg.Histogram("serve_queue_wait_seconds").Count() != modelN {
		t.Fatal("queue-wait histogram count mismatch")
	}
	if reg.Histogram("serve_fast_request_seconds").Count() != fastN {
		t.Fatal("fast-latency histogram count mismatch")
	}
	var tierTotal uint64
	for _, name := range []string{"context", "markov", "miss"} {
		tierTotal += reg.Counter("serve_fast_tier_" + name + "_total").Value()
	}
	if tierTotal != fastN {
		t.Fatalf("fast tier counters sum %d, want %d", tierTotal, fastN)
	}
}

// TestNewValidation: config errors surface at construction, not at serve
// time.
func TestNewValidation(t *testing.T) {
	fixture(t)
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted a nil model")
	}
	// A table compiled against a different vocabulary must be refused.
	bad := *fx.tab
	bad.VocabFP = fx.tab.VocabFP + 1
	if _, err := New(Config{Model: fx.p.Model, Table: &bad}); err == nil {
		t.Error("New accepted a table with a mismatched vocabulary fingerprint")
	}
}

// TestLatencyRecorder pins the exact-sample recorder: bounded retention,
// total counts, nearest-rank quantiles.
func TestLatencyRecorder(t *testing.T) {
	r := NewLatencyRecorder(4)
	for i := int64(1); i <= 6; i++ {
		r.record(i * 100)
	}
	if r.Count() != 6 {
		t.Fatalf("Count = %d, want 6 (drops still counted)", r.Count())
	}
	if got := len(r.Samples()); got != 4 {
		t.Fatalf("retained %d samples, want 4", got)
	}
	if q := r.Quantile(1.0); q != 400 {
		t.Fatalf("max of retained = %d, want 400", q)
	}
	if q := r.Quantile(0.5); q != 200 {
		t.Fatalf("p50 = %d, want 200", q)
	}
	var nilRec *LatencyRecorder
	nilRec.record(1) // nil-safe
	if nilRec.Count() != 0 || nilRec.Quantile(0.5) != 0 {
		t.Fatal("nil recorder not inert")
	}
}

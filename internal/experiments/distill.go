package experiments

import (
	"fmt"
	"strings"
	"testing"

	"voyager/internal/distill"
	"voyager/internal/eval"
	"voyager/internal/prefetch/distilled"
	"voyager/internal/trace"
	"voyager/internal/voyager"
)

// distillSweepLog2s are the full-context table sizes the differential
// harness sweeps (buckets = 1<<log2; bytes ≈ (1+TopK)·8·buckets plus the
// Markov fallback).
var distillSweepLog2s = []int{10, 12, 14, 16}

// distilledFor compiles (once) the distilled fast-path predictor for a
// benchmark — default table parameters, calibrated over the benchmark's
// whole stream from the cached degree-8 Voyager teacher — and replays it
// online over the stream, returning per-stream-access predictions.
func (r *Run) distilledFor(name string) [][]uint64 {
	r.cache.mu.Lock()
	if p, ok := r.cache.distilled[name]; ok {
		r.cache.mu.Unlock()
		return p
	}
	r.cache.mu.Unlock()

	vp := r.voyagerFor(name)
	st := r.streamFor(name)
	r.Opts.logf("  distilling voyager on %s...", name)
	tab := distill.Compile(vp, 0, vp.NumAccesses(), distill.DefaultParams())
	pf, err := distilled.New(tab, vp.Model.Vocab(), 8)
	if err != nil {
		panic(err)
	}
	preds := eval.CollectPredictions(st.Trace, pf)
	r.cache.mu.Lock()
	r.cache.distilled[name] = preds
	r.cache.mu.Unlock()
	return preds
}

// DistillPoint is one (benchmark × table size) cell of the differential
// harness: the distilled table against its fp32 and int8-quantized
// teachers on the calibration-held-out half of the stream.
type DistillPoint struct {
	Benchmark   string  `json:"benchmark,omitempty"`
	Log2Buckets int     `json:"log2_buckets"`
	TableBytes  int     `json:"table_bytes"`
	Keys        int     `json:"keys"`
	MarkovKeys  int     `json:"markov_keys"`
	Top1VsFP32  float64 `json:"top1_agreement_fp32"`
	Top1VsQuant float64 `json:"top1_agreement_quant"`
	NsPerPred   int64   `json:"ns_per_prediction"`
}

// heldOutPositions samples up to 2048 trigger positions, evenly strided,
// from the held-out half [n/2, n) of a stream.
func heldOutPositions(n int) []int {
	lo := n / 2
	if lo >= n {
		return nil
	}
	stride := (n - lo) / 2048
	if stride < 1 {
		stride = 1
	}
	out := make([]int, 0, (n-lo)/stride+1)
	for i := lo; i < n; i += stride {
		out = append(out, i)
	}
	return out
}

// teacherTop1 collects the teacher's top-1 (page, offset) token pair per
// position (-1,-1 when the teacher produces no candidate), in inference
// batches.
func teacherTop1(p *voyager.Predictor, positions []int) [][2]int {
	out := make([][2]int, len(positions))
	const batch = 256
	for lo := 0; lo < len(positions); lo += batch {
		hi := lo + batch
		if hi > len(positions) {
			hi = len(positions)
		}
		cands := p.PredictAt(positions[lo:hi], 1)
		for b := range cands {
			if len(cands[b]) == 0 {
				out[lo+b] = [2]int{-1, -1}
				continue
			}
			out[lo+b] = [2]int{cands[b][0].PageTok, cands[b][0].OffTok}
		}
	}
	return out
}

// tableTop1Agreement compares the table's fallback-chain top-1 against
// precomputed teacher pairs; positions where the teacher has no candidate
// are skipped, a table miss on a scored position counts as disagreement.
func tableTop1Agreement(p *voyager.Predictor, tab *distill.Table, positions []int, teacher [][2]int) float64 {
	agree, scored := 0, 0
	for i, pos := range positions {
		if teacher[i][0] < 0 {
			continue
		}
		scored++
		_, pg, off := p.TokensAt(pos)
		slots, _ := tab.Lookup(distill.KeyAt(p, pos, tab.HistLen), distill.PairKey(pg, off))
		if len(slots) == 0 || slots[0] == 0 {
			continue
		}
		sp, so, _ := distill.DecodeSlot(slots[0])
		if sp == teacher[i][0] && so == teacher[i][1] {
			agree++
		}
	}
	if scored == 0 {
		return 0
	}
	return float64(agree) / float64(scored)
}

// nsPerOp times fn with the standard bench machinery.
func nsPerOp(fn func(b *testing.B)) int64 {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return res.NsPerOp()
}

// replayNsPerPred times the online distilled replay over the stream (one
// Access per op, wrapping with a Reset at the end of the trace).
func replayNsPerPred(pf *distilled.Prefetcher, tr *trace.Trace) int64 {
	accs := tr.Accesses
	idx := 0
	return nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pf.Access(idx, accs[idx])
			idx++
			if idx == len(accs) {
				idx = 0
				pf.Reset()
			}
		}
	})
}

// sweepDistill measures the size/accuracy/latency frontier for one trained
// teacher: each table size is compiled on the first half of the stream and
// scored on the held-out second half against both the fp32 and the
// int8-quantized teacher, then timed replaying online. Returns the sweep
// points plus the two teachers' per-prediction inference cost (batched at
// the model's batch width, amortized per row).
func sweepDistill(p *voyager.Predictor, tr *trace.Trace, log2s []int) (pts []distillCell, fp32Ns, quantNs int64) {
	n := p.NumAccesses()
	half := n / 2
	held := heldOutPositions(n)
	fp32 := teacherTop1(p, held)
	p.Model.SetQuantizedPredict(true)
	quant := teacherTop1(p, held)
	p.Model.SetQuantizedPredict(false)

	// Teacher cost per prediction: one full PredictAt batch, amortized.
	width := p.Cfg.BatchSize
	if width > len(held) {
		width = len(held)
	}
	batch := held[:width]
	fp32Ns = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.PredictAt(batch, 1)
		}
	}) / int64(width)
	p.Model.SetQuantizedPredict(true)
	quantNs = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.PredictAt(batch, 1)
		}
	}) / int64(width)
	p.Model.SetQuantizedPredict(false)

	for _, lg := range log2s {
		prm := distill.DefaultParams()
		prm.Log2Buckets = lg
		if prm.MarkovLog2 > lg {
			prm.MarkovLog2 = lg
		}
		tab := distill.Compile(p, 0, half, prm)
		pf, err := distilled.New(tab, p.Model.Vocab(), 1)
		if err != nil {
			panic(err)
		}
		st := tab.Stats()
		pts = append(pts, distillCell{
			point: DistillPoint{
				Log2Buckets: lg,
				TableBytes:  st.Bytes,
				Keys:        st.Keys,
				MarkovKeys:  st.MarkovKeys,
				Top1VsFP32:  tableTop1Agreement(p, tab, held, fp32),
				Top1VsQuant: tableTop1Agreement(p, tab, held, quant),
				NsPerPred:   replayNsPerPred(pf, tr),
			},
			table: tab,
		})
	}
	return pts, fp32Ns, quantNs
}

// distillCell pairs a sweep point with its compiled table so callers can
// reuse one (the bench harness replays the default-size table online).
type distillCell struct {
	point DistillPoint
	table *distill.Table
}

// DistillResult is the cmd/experiments "distill" artifact: the differential
// harness over the ablation benchmarks.
type DistillResult struct {
	Rows []DistillPoint
	// FP32NsPerPred / QuantNsPerPred record, per benchmark, the teacher's
	// amortized per-prediction inference cost for context.
	TeacherNs map[string][2]int64
}

// DistillStudy sweeps table size vs. top-1 agreement vs. ns/prediction for
// each ablation benchmark's trained Voyager against its fp32 and quantized
// teachers.
func (r *Run) DistillStudy() *DistillResult {
	res := &DistillResult{TeacherNs: map[string][2]int64{}}
	for _, name := range r.Opts.benchList(AblationBenchmarks) {
		vp := r.voyagerFor(name)
		st := r.streamFor(name)
		r.Opts.logf("distill study: %s", name)
		cells, fp32Ns, quantNs := sweepDistill(vp, st.Trace, distillSweepLog2s)
		for _, c := range cells {
			p := c.point
			p.Benchmark = name
			res.Rows = append(res.Rows, p)
		}
		res.TeacherNs[name] = [2]int64{fp32Ns, quantNs}
	}
	return res
}

// String renders the differential table.
func (d *DistillResult) String() string {
	var b strings.Builder
	b.WriteString("Distillation: table size vs top-1 agreement vs ns/prediction\n")
	fmt.Fprintf(&b, "  %-10s %6s %10s %8s %8s %10s %10s %12s\n",
		"benchmark", "log2", "bytes", "keys", "markov", "vs_fp32", "vs_quant", "ns/pred")
	last := ""
	for _, p := range d.Rows {
		name := p.Benchmark
		if name == last {
			name = ""
		} else {
			last = p.Benchmark
		}
		fmt.Fprintf(&b, "  %-10s %6d %10d %8d %8d %10.3f %10.3f %12d\n",
			name, p.Log2Buckets, p.TableBytes, p.Keys, p.MarkovKeys,
			p.Top1VsFP32, p.Top1VsQuant, p.NsPerPred)
	}
	// Stable teacher-cost footer ordered by the row order above.
	seen := map[string]bool{}
	for _, p := range d.Rows {
		if seen[p.Benchmark] {
			continue
		}
		seen[p.Benchmark] = true
		ns := d.TeacherNs[p.Benchmark]
		fmt.Fprintf(&b, "  teacher %-10s fp32 %8d ns/pred   int8 %8d ns/pred\n",
			p.Benchmark, ns[0], ns[1])
	}
	return b.String()
}

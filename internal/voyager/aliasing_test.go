package voyager

import (
	"math"
	"testing"

	"voyager/internal/tensor"
	"voyager/internal/trace"
)

// aliasingTrace builds the §4.2.1 offset-aliasing scenario: two pages whose
// offset transition functions disagree. Page 1 cycles offsets 5→20→40;
// page 2 cycles 5→40→20. A page-agnostic offset representation receives
// contradictory gradients for the shared offsets.
func aliasingTrace(laps int) *trace.Trace {
	tr := &trace.Trace{Name: "alias"}
	inst := uint64(0)
	emitCycle := func(page uint64, offs []uint64) {
		for _, o := range offs {
			inst += 5
			tr.Append(0x400000, trace.Join(page, o), inst)
		}
	}
	for l := 0; l < laps; l++ {
		// Alternate page visits so both contexts stay fresh.
		emitCycle(0x100, []uint64{5, 20, 40})
		emitCycle(0x200, []uint64{5, 40, 20})
	}
	tr.Instructions = inst
	return tr
}

func offsetAccuracy(tr *trace.Trace, p *Predictor, skip int) float64 {
	correct, total := 0, 0
	for i := skip; i+1 < tr.Len(); i++ {
		preds := p.Predictions()[i]
		total++
		if len(preds) == 0 {
			continue
		}
		if trace.Line(preds[0]) == trace.Line(tr.Accesses[i+1].Addr) {
			correct++
		}
	}
	return float64(correct) / float64(total)
}

// The attention-based page-aware offset embedding must handle the aliasing
// task well, and the attention weights for a shared offset must diverge
// between the two pages — the mixture-of-experts mechanism in action.
func TestPageAwareOffsetsResolveAliasing(t *testing.T) {
	tr := aliasingTrace(400) // 2400 accesses
	cfg := FastConfig()
	cfg.EpochAccesses = 600

	p, err := Train(tr, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	acc := offsetAccuracy(tr, p, 1200)
	if acc < 0.85 {
		t.Fatalf("page-aware model accuracy %.2f on aliasing task, want ≥0.85", acc)
	}

	// Mechanism check: for the shared offset token, the attention
	// distribution conditioned on page 1 differs from page 2's.
	m := p.Model
	voc := m.Vocab()
	page1, off5 := voc.EncodeAccess(0, trace.Line(trace.Join(0x100, 5)))
	page2, _ := voc.EncodeAccess(0, trace.Line(trace.Join(0x200, 5)))
	tp := tensor.NewTape()
	q := tensor.NewMat(2, cfg.PageEmbed)
	copy(q.Row(0), m.pageEmb.Table.W.Row(page1))
	copy(q.Row(1), m.pageEmb.Table.W.Row(page2))
	e := tensor.NewMat(2, cfg.OffsetEmbed())
	copy(e.Row(0), m.offEmb.Table.W.Row(off5))
	copy(e.Row(1), m.offEmb.Table.W.Row(off5))
	_, w := tp.MoEAttention(tp.Const(q), tp.Const(e), cfg.AttnScale)
	var dist float64
	for s := 0; s < cfg.Experts; s++ {
		d := float64(w.At(0, s) - w.At(1, s))
		dist += d * d
	}
	dist = math.Sqrt(dist)
	if dist < 1e-3 {
		t.Fatalf("attention weights identical across pages (L2 %g): page context unused", dist)
	}
}

// The ablation (naive shared offset embedding) must train without error and
// must not beat the attention model on the aliasing task.
func TestNaiveOffsetAblation(t *testing.T) {
	tr := aliasingTrace(400)
	cfg := FastConfig()
	cfg.EpochAccesses = 600

	aware, err := Train(tr, cfg)
	if err != nil {
		t.Fatalf("Train aware: %v", err)
	}
	cfgN := cfg
	cfgN.PageAwareOffsets = false
	naive, err := Train(tr, cfgN)
	if err != nil {
		t.Fatalf("Train naive: %v", err)
	}
	aAcc := offsetAccuracy(tr, aware, 1200)
	nAcc := offsetAccuracy(tr, naive, 1200)
	if nAcc > aAcc+0.05 {
		t.Fatalf("naive decomposition (%.2f) beat page-aware attention (%.2f)", nAcc, aAcc)
	}
}

package distill

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// On-disk format (all little-endian):
//
//	magic    uint32  "VYDT"
//	version  uint32
//	histLen, topK, log2Buckets, markovLog2, maxProbe, reserved uint32
//	vocabFP  uint64
//	main.keys    [1<<log2Buckets]uint64
//	main.slots   [(1<<log2Buckets)*topK]uint64
//	markov.keys  [1<<markovLog2]uint64
//	markov.slots [(1<<markovLog2)*topK]uint64
//	checksum uint64  (FNV-1a over every preceding byte)
//
// The payload is the table's flat arrays verbatim, 8-byte aligned after a
// fixed 40-byte header — a loader may mmap the file and slice the arrays in
// place. Builds are deterministic, so one (model, trace, params) triple
// always produces a byte-identical file.
const (
	// Magic is the file magic, "VYDT" read as a little-endian uint32.
	Magic uint32 = 'V' | 'Y'<<8 | 'D'<<16 | 'T'<<24
	// Version is the current format version; Load rejects any other.
	Version uint32 = 1

	// maxLog2 bounds header-declared table sizes so a corrupted header
	// cannot demand an absurd allocation before the checksum is verified.
	maxLog2 = 30
	maxTopK = 64
)

// fnvWriter hashes every byte it forwards (FNV-1a).
type fnvWriter struct {
	w io.Writer
	h uint64
	n int64
}

func (f *fnvWriter) Write(p []byte) (int, error) {
	for _, b := range p {
		f.h = (f.h ^ uint64(b)) * fnvPrime64
	}
	n, err := f.w.Write(p)
	f.n += int64(n)
	return n, err
}

// fnvReader hashes every byte it yields.
type fnvReader struct {
	r io.Reader
	h uint64
}

func (f *fnvReader) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	for _, b := range p[:n] {
		f.h = (f.h ^ uint64(b)) * fnvPrime64
	}
	return n, err
}

const wordChunk = 4096 // words encoded per buffered write/read

func writeWords(w io.Writer, buf []byte, words []uint64) error {
	for len(words) > 0 {
		n := len(words)
		if n > wordChunk {
			n = wordChunk
		}
		for i, v := range words[:n] {
			binary.LittleEndian.PutUint64(buf[8*i:], v)
		}
		if _, err := w.Write(buf[:8*n]); err != nil {
			return err
		}
		words = words[n:]
	}
	return nil
}

func readWords(r io.Reader, buf []byte, words []uint64) error {
	for len(words) > 0 {
		n := len(words)
		if n > wordChunk {
			n = wordChunk
		}
		if _, err := io.ReadFull(r, buf[:8*n]); err != nil {
			return err
		}
		for i := range words[:n] {
			words[i] = binary.LittleEndian.Uint64(buf[8*i:])
		}
		words = words[n:]
	}
	return nil
}

// WriteTo serializes the table in the versioned, checksummed format.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	fw := &fnvWriter{w: w, h: fnvOffset64}
	var hdr [40]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], Magic)
	le.PutUint32(hdr[4:], Version)
	le.PutUint32(hdr[8:], uint32(t.HistLen))
	le.PutUint32(hdr[12:], uint32(t.TopK))
	le.PutUint32(hdr[16:], uint32(t.Log2Buckets))
	le.PutUint32(hdr[20:], uint32(t.MarkovLog2))
	le.PutUint32(hdr[24:], uint32(t.MaxProbe))
	le.PutUint32(hdr[28:], 0) // reserved
	le.PutUint64(hdr[32:], t.VocabFP)
	if _, err := fw.Write(hdr[:]); err != nil {
		return fw.n, err
	}
	buf := make([]byte, 8*wordChunk)
	for _, words := range [][]uint64{t.main.keys, t.main.slots, t.markov.keys, t.markov.slots} {
		if err := writeWords(fw, buf, words); err != nil {
			return fw.n, err
		}
	}
	// The checksum trails the hashed region and is written to the raw
	// writer, not through the hasher.
	le.PutUint64(buf[:8], fw.h)
	n, err := w.Write(buf[:8])
	return fw.n + int64(n), err
}

// Load deserializes a table, verifying magic, version, header sanity and
// the trailing checksum.
func Load(r io.Reader) (*Table, error) {
	fr := &fnvReader{r: r, h: fnvOffset64}
	var hdr [40]byte
	if _, err := io.ReadFull(fr, hdr[:]); err != nil {
		return nil, fmt.Errorf("distill: short header: %w", err)
	}
	le := binary.LittleEndian
	if m := le.Uint32(hdr[0:]); m != Magic {
		return nil, fmt.Errorf("distill: bad magic %#x: not a distilled table file", m)
	}
	if v := le.Uint32(hdr[4:]); v != Version {
		return nil, fmt.Errorf("distill: version mismatch: file v%d, library v%d", v, Version)
	}
	prm := Params{
		HistLen:     int(le.Uint32(hdr[8:])),
		TopK:        int(le.Uint32(hdr[12:])),
		Log2Buckets: int(le.Uint32(hdr[16:])),
		MarkovLog2:  int(le.Uint32(hdr[20:])),
		MaxProbe:    int(le.Uint32(hdr[24:])),
	}
	switch {
	case prm.HistLen <= 0 || prm.HistLen > 1<<16,
		prm.TopK <= 0 || prm.TopK > maxTopK,
		prm.Log2Buckets <= 0 || prm.Log2Buckets > maxLog2,
		prm.MarkovLog2 <= 0 || prm.MarkovLog2 > maxLog2,
		prm.MaxProbe <= 0 || prm.MaxProbe > 1<<16:
		return nil, fmt.Errorf("distill: corrupt header: params %+v out of range", prm)
	}
	t := &Table{Params: prm, VocabFP: le.Uint64(hdr[32:])}
	t.main = newSubtable(prm.Log2Buckets, prm.TopK, prm.MaxProbe)
	t.markov = newSubtable(prm.MarkovLog2, prm.TopK, prm.MaxProbe)
	buf := make([]byte, 8*wordChunk)
	for _, words := range [][]uint64{t.main.keys, t.main.slots, t.markov.keys, t.markov.slots} {
		if err := readWords(fr, buf, words); err != nil {
			return nil, fmt.Errorf("distill: short payload: %w", err)
		}
	}
	sum := fr.h
	if _, err := io.ReadFull(r, buf[:8]); err != nil {
		return nil, fmt.Errorf("distill: missing checksum: %w", err)
	}
	if got := le.Uint64(buf[:8]); got != sum {
		return nil, fmt.Errorf("distill: checksum mismatch (file %#x, computed %#x): file corrupted", got, sum)
	}
	return t, nil
}

// Save writes the table to path (buffered; created with 0644).
func (t *Table) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if _, err := t.WriteTo(bw); err != nil {
		_ = f.Close() // already failing: the write error wins
		return fmt.Errorf("distill: save %s: %w", path, err)
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close() // already failing: the flush error wins
		return fmt.Errorf("distill: save %s: %w", path, err)
	}
	return f.Close()
}

// LoadFile reads a table from path.
func LoadFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-side close: Load already has the bytes
	t, err := Load(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("distill: load %s: %w", path, err)
	}
	return t, nil
}

// Package sortkeys provides deterministic iteration over Go maps.
//
// Map iteration order is randomized by the runtime; in determinism-critical
// packages (flagged by vetvoyager's maporder check) any map range whose body
// has order-dependent effects — float32 accumulation, id assignment,
// tie-breaking by first-seen — must iterate a sorted key slice instead.
package sortkeys

import (
	"cmp"
	"slices"
)

// Sorted returns the keys of m in ascending order.
func Sorted[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// SortedFunc returns the keys of m ordered by less.
func SortedFunc[K comparable, V any](m map[K]V, less func(a, b K) int) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, less)
	return keys
}

// Per-connection request handling. One goroutine per connection reads
// frames, advances sessions, and answers — inline for the fast tier, via
// the batcher for the model tier.
//
// Per-connection scratch (frame buffers, row snapshot, reply channel,
// history window) is allocated once at connection setup and reused for
// every request, so the steady-state fast path allocates nothing: the
// exact-latency window (session advance through candidates ready) runs
// without triggering the collector even at bench stream counts.
package serve

import (
	"bufio"
	"math"
	"net"
	"time"

	"voyager/internal/distill"
	"voyager/internal/trace"
	"voyager/internal/voyager"
)

// connState is one handler's reusable scratch.
type connState struct {
	resp    Response
	out     []byte // encoded response frame
	rowBuf  []tok3 // model-tier window snapshot
	histBuf []distill.TokPair
	pend    pending // reused: the handler blocks on reply before the next request
	reply   chan []voyager.Candidate

	streamID uint64 // cached session lookup
	sess     *session
}

// handleConn serves one connection until EOF, a protocol error, or Close.
func (s *Server) handleConn(c net.Conn, id uint64) {
	defer s.handlers.Done()
	defer s.untrackConn(id)
	defer func() { _ = c.Close() }()

	br := bufio.NewReaderSize(c, 4096)
	bw := bufio.NewWriterSize(c, 4096)
	tk := s.obs.connTrack(id)
	cs := &connState{
		out:     make([]byte, 0, 4+respHeaderLen+16*candLen),
		rowBuf:  make([]tok3, s.seqLen),
		histBuf: make([]distill.TokPair, s.histLen),
		reply:   make(chan []voyager.Candidate, 1),
	}
	var in []byte
	for {
		payload, err := ReadFrame(br, in)
		if err != nil {
			return // EOF, read deadline from Close, or oversized frame
		}
		in = payload
		req, err := DecodeRequest(payload)
		if err != nil {
			// Malformed frame: tell this client and drop this connection;
			// the daemon and every other stream keep serving.
			s.obs.errors.Inc()
			cs.resp = Response{Status: StatusError, Err: err.Error()}
			_ = WriteFrame(bw, EncodeResponse(cs.out[:0], &cs.resp))
			return
		}
		switch req.Op {
		case OpPing:
			cs.resp = Response{Status: StatusOK}
		case OpClose:
			s.sessions.remove(req.Stream)
			if cs.streamID == req.Stream {
				cs.sess = nil
			}
			cs.resp = Response{Status: StatusOK}
		case OpPredict:
			if s.closing.Load() {
				s.obs.errors.Inc()
				cs.resp = Response{Status: StatusError, Err: "serve: shutting down"}
				_ = WriteFrame(bw, EncodeResponse(cs.out[:0], &cs.resp))
				return
			}
			sp := tk.Begin("request")
			s.predict(cs, req)
			sp.End()
		}
		if err := WriteFrame(bw, EncodeResponse(cs.out[:0], &cs.resp)); err != nil {
			return
		}
	}
}

// predict answers one OpPredict into cs.resp.
func (s *Server) predict(cs *connState, req Request) {
	s.obs.requests.Inc()
	st := cs.sess
	if st == nil || cs.streamID != req.Stream || st.gone.Load() {
		st = s.sessions.get(req.Stream)
		cs.sess, cs.streamID = st, req.Stream
	}
	if req.Flags&FlagFast != 0 && s.cfg.Table != nil {
		s.predictFast(cs, st, req)
		return
	}
	s.predictModel(cs, st, req)
}

// predictModel snapshots the stream's token window, queues it for the
// batcher, and decodes the model's candidates against the trigger line.
func (s *Server) predictModel(cs *connState, st *session, req Request) {
	t0 := time.Now()
	st.mu.Lock()
	st.advance(s.voc, req.PC, req.Addr)
	st.copyWindow(cs.rowBuf, s.seqLen)
	line := st.line
	st.mu.Unlock()
	st.lastUsed.Store(t0.UnixNano())

	cs.pend = pending{row: cs.rowBuf, line: line, enq: t0, reply: cs.reply}
	s.queue <- &cs.pend
	cands := <-cs.reply

	cs.resp.Status = StatusOK
	cs.resp.Tier = TierModel
	cs.resp.Err = ""
	cs.resp.Cands = cs.resp.Cands[:0]
	for _, c := range cands {
		addr := uint64(0)
		if ln, ok := s.voc.Decode(line, c.PageTok, c.OffTok); ok {
			addr = ln << trace.LineBits
		}
		cs.resp.Cands = append(cs.resp.Cands, Candidate{
			PageTok:   int32(c.PageTok),
			OffTok:    int32(c.OffTok),
			ScoreBits: math.Float64bits(c.Score),
			Addr:      addr,
		})
	}
	lat := time.Since(t0)
	s.obs.modelReqs.Inc()
	s.obs.reqSec.Observe(lat.Seconds())
	s.cfg.ModelLatency.record(lat.Nanoseconds())
}

// predictFast answers inline from the distilled table, mirroring
// distilled.Prefetcher.Access exactly: decode slots against the trigger,
// skip the trigger line, dedup, cap at degree, and degrade to next-line on
// a full table miss. The candidate records carry the decoded address (the
// fast tier's contract) plus the slot's token ids; ScoreBits is 0 — the
// table stores f16 probabilities, not model scores.
func (s *Server) predictFast(cs *connState, st *session, req Request) {
	t0 := time.Now()
	st.mu.Lock()
	pcTok, line := st.advance(s.voc, req.PC, req.Addr)
	st.copyPairs(cs.histBuf, s.histLen)
	trig := st.ring[st.head]
	st.mu.Unlock()

	key := distill.ContextKey(int(pcTok), cs.histBuf)
	slots, tier := s.cfg.Table.Lookup(key, distill.PairKey(int(trig.page), int(trig.off)))

	cs.resp.Status = StatusOK
	cs.resp.Tier = TierFast
	cs.resp.Err = ""
	out := cs.resp.Cands[:0]
	for _, slot := range slots {
		if slot == 0 {
			break
		}
		pg, off, _ := distill.DecodeSlot(slot)
		cand, ok := s.voc.Decode(line, pg, off)
		if !ok || cand == line {
			continue
		}
		addr := cand << trace.LineBits
		if dupAddr(out, addr) {
			continue
		}
		out = append(out, Candidate{PageTok: int32(pg), OffTok: int32(off), Addr: addr})
		if len(out) == s.degree {
			break
		}
	}
	if len(out) == 0 && tier == distill.TierMiss {
		out = append(out, Candidate{PageTok: -1, OffTok: -1, Addr: (line + 1) << trace.LineBits})
	}
	cs.resp.Cands = out
	lat := time.Since(t0)

	st.lastUsed.Store(t0.UnixNano())
	s.obs.fastReqs.Inc()
	s.obs.tierCounts[tier].Inc()
	s.obs.fastSec.Observe(lat.Seconds())
	s.cfg.FastLatency.record(lat.Nanoseconds())
}

func dupAddr(cands []Candidate, addr uint64) bool {
	for _, c := range cands {
		if c.Addr == addr {
			return true
		}
	}
	return false
}

package graphs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromEdges(t *testing.T) {
	g := FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {2, 3}, {3, 0}})
	if g.N != 4 || g.NumEdges() != 4 {
		t.Fatalf("shape: n=%d m=%d", g.N, g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(1) != 0 {
		t.Fatalf("degrees wrong")
	}
	nb := g.Neigh(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("neighbors of 0 = %v", nb)
	}
}

func TestTranspose(t *testing.T) {
	g := FromEdges(3, [][2]int32{{0, 1}, {0, 2}, {1, 2}})
	gt := g.Transpose()
	if gt.NumEdges() != 3 {
		t.Fatalf("edges = %d", gt.NumEdges())
	}
	if gt.OutDegree(2) != 2 {
		t.Fatalf("in-degree of 2 should be 2, got %d", gt.OutDegree(2))
	}
	// Double transpose preserves degrees.
	gtt := gt.Transpose()
	for u := 0; u < g.N; u++ {
		if g.OutDegree(u) != gtt.OutDegree(u) {
			t.Fatalf("double transpose changed degree of %d", u)
		}
	}
}

// Property: offsets are monotonic and consistent with the edge count.
func TestCSRInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		g := Uniform(n, 1+rng.Intn(4), rng)
		if int(g.Offsets[g.N]) != g.NumEdges() {
			return false
		}
		for u := 0; u < g.N; u++ {
			if g.Offsets[u] > g.Offsets[u+1] {
				return false
			}
			for _, v := range g.Neigh(u) {
				if v < 0 || int(v) >= g.N {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKronecker(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Kronecker(8, 4, rng)
	if g.N != 256 {
		t.Fatalf("n = %d", g.N)
	}
	if g.NumEdges() == 0 {
		t.Fatalf("no edges")
	}
	// Kronecker graphs are skewed: max degree should far exceed the mean.
	maxDeg, sum := 0, 0
	for u := 0; u < g.N; u++ {
		d := g.OutDegree(u)
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sum) / float64(g.N)
	if float64(maxDeg) < 3*mean {
		t.Fatalf("degree distribution not skewed: max %d vs mean %.1f", maxDeg, mean)
	}
}

func TestKroneckerDeterministic(t *testing.T) {
	a := Kronecker(7, 4, rand.New(rand.NewSource(9)))
	b := Kronecker(7, 4, rand.New(rand.NewSource(9)))
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("nondeterministic generation")
	}
	for i := range a.Neighbors {
		if a.Neighbors[i] != b.Neighbors[i] {
			t.Fatalf("nondeterministic neighbors")
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 3)
	if g.N != 9 {
		t.Fatalf("n = %d", g.N)
	}
	// Corner has 2 neighbors, center has 4.
	if g.OutDegree(0) != 2 {
		t.Fatalf("corner degree %d", g.OutDegree(0))
	}
	if g.OutDegree(4) != 4 {
		t.Fatalf("center degree %d", g.OutDegree(4))
	}
	// Symmetry: every edge has its reverse.
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neigh(u) {
			found := false
			for _, w := range g.Neigh(int(v)) {
				if int(w) == u {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d missing reverse", u, v)
			}
		}
	}
}

package metrics

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentAccess hammers one registry from many goroutines —
// creating instruments by (sometimes shared) name, recording through them,
// and snapshotting concurrently. Run under -race this pins the locking
// discipline; the final counter total pins that no increment was lost.
func TestRegistryConcurrentAccess(t *testing.T) {
	reg := NewRegistry()
	const (
		workers = 8
		iters   = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				reg.Counter("shared_total").Inc()
				reg.Counter(fmt.Sprintf("worker_total.w%02d", w)).Inc()
				reg.Gauge("last_value").Set(float64(i))
				reg.Histogram("values").Observe(float64(i) + 0.5)
				if i%64 == 0 {
					snap := reg.Snapshot()
					if err := snap.Validate(); err != nil {
						t.Errorf("mid-run snapshot invalid: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	snap := reg.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatalf("final snapshot invalid: %v", err)
	}
	if got := reg.Counter("shared_total").Value(); got != workers*iters {
		t.Fatalf("shared_total = %d, want %d", got, workers*iters)
	}
	if h := snap.Histogram("values"); h == nil || h.Count != workers*iters {
		t.Fatalf("values histogram = %+v, want count %d", h, workers*iters)
	}
}

// TestServerShutdownNoGoroutineLeak starts the HTTP endpoint, exercises it,
// closes it, and requires the goroutine count to return to its baseline —
// the serve loop and per-connection goroutines must all exit on Close.
func TestServerShutdownNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	reg := NewRegistry()
	reg.Counter("requests_total").Add(7)
	srv, err := StartServer(reg, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	for _, path := range []string{"/metrics", "/metrics.ndjson"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d err %v", path, resp.StatusCode, err)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s: empty body", path)
		}
	}
	if _, err := ParseSnapshot(mustGet(t, "http://"+srv.Addr()+"/metrics.ndjson")); err != nil {
		t.Fatalf("served NDJSON does not parse: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Keep-alive and scheduler cleanup is asynchronous; poll briefly.
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before server, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func mustGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return body
}

// Command tracecheck validates Chrome trace-event JSON files produced by
// internal/tracing (the -trace-out flag of voyager/simrun/experiments):
// metadata-named processes and threads, strict begin/end span nesting, and
// async begin/end pairing by (pid, cat, id). Exit 0 means the file loads
// cleanly in Perfetto; verify.sh runs it on a real traced run.
//
// Usage:
//
//	go run ./cmd/tracecheck run.trace.json [more.json ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"voyager/internal/tracing"
)

func main() {
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json> [...]")
		os.Exit(2)
	}
	fail := false
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			fail = true
			continue
		}
		st, err := tracing.ValidateBytes(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			fail = true
			continue
		}
		fmt.Printf("%s: ok — %d events (%d spans, %d async, %d instants) across %d processes / %d threads\n",
			path, st.Events, st.Spans, st.AsyncSpans, st.Instants, st.Processes, st.Threads)
	}
	if fail {
		os.Exit(1)
	}
}

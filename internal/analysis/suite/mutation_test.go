package suite_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"voyager/internal/analysis"
	"voyager/internal/analysis/suite"
)

// TestAtomicMixCatchesSeededTracingMutation is a sensitivity check for the
// suite: TestAnalyzersCleanOnRepo proves the analyzers are quiet on healthy
// code, but a suite that never fires would pass that test too. Here the real
// internal/tracing package is copied into a throwaway module and its publish
// protocol is mutated back to the pre-migration shape — a plain uint64 count
// written with function-style atomics plus one plain read (the exact race
// the atomic.Uint64 migration removed). atomicmix must flag the plain read.
func TestAtomicMixCatchesSeededTracingMutation(t *testing.T) {
	// The mutation rewrites the typed-atomic publish counter to
	// function-style atomics on an ordinary field, then "forgets" one
	// access. Each old string must be present exactly as written — if
	// tracing.go drifts, this test fails loudly instead of silently
	// checking nothing.
	mutations := []struct{ old, new string }{
		{"count   atomic.Uint64", "count   uint64"},
		{"n := tk.count.Load()", "n := atomic.LoadUint64(&tk.count)"},
		{"tk.count.Store(n + 1)", "atomic.StoreUint64(&tk.count, n+1)"},
		{"return tk.count.Load()", "return tk.count"}, // the seeded plain read
	}

	srcDir := filepath.Join("..", "..", "tracing")
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	pkgDir := filepath.Join(root, "tracing")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module tmpmod\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			t.Fatal(err)
		}
		src := string(data)
		if name == "tracing.go" {
			for _, m := range mutations {
				if !strings.Contains(src, m.old) {
					t.Fatalf("tracing.go no longer contains %q; update the seeded mutation", m.old)
				}
				src = strings.ReplaceAll(src, m.old, m.new)
			}
		}
		if err := os.WriteFile(filepath.Join(pkgDir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{"tracing"})
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Run(pkgs, suite.Analyzers())

	var hits []string
	for _, d := range res.Findings {
		if d.Check == "atomicmix" {
			hits = append(hits, d.String())
		}
	}
	if len(hits) == 0 {
		t.Fatalf("atomicmix missed the seeded mixed-access mutation; all findings: %v", res.Findings)
	}
	for _, h := range hits {
		if !strings.Contains(h, "count") {
			t.Errorf("atomicmix finding names the wrong variable: %s", h)
		}
	}
	// The mutation seeds exactly one plain access; more would mean the
	// rewrite itself left unconverted accesses behind.
	if len(hits) != 1 {
		t.Errorf("expected exactly 1 atomicmix finding, got %d:\n%s", len(hits), strings.Join(hits, "\n"))
	}
}

package voyager

import (
	"fmt"

	"voyager/internal/label"
	"voyager/internal/metrics"
	"voyager/internal/nn"
	"voyager/internal/prefetch"
	"voyager/internal/trace"
	"voyager/internal/tracing"
	"voyager/internal/vocab"
)

// Predictor is a trained Voyager model bound to one trace, holding the
// per-access predictions produced by the online protocol.
type Predictor struct {
	Cfg   Config
	Model *Model

	lines  []uint64
	pcs    []uint64
	tokens []tok
	labels []label.Labels

	preds      [][]uint64 // per access: predicted line-aligned byte addrs
	epochLoss  []float32
	numTrained int

	// Batch-assembly scratch reused across batches: the sequence buffers and
	// the per-row label slices are allocated once and recycled, so steady-
	// state training allocates nothing here (same pattern as the predictRange
	// seen-map hoist).
	seqBuf                []batchToken
	pagePosBuf, offPosBuf [][]int
	pageWBuf, offWBuf     [][]float32
	scanPage, scanOff     []int
	scanPageW, scanOffW   []float32
}

type tok struct {
	pc, page, off int
}

// Train runs the paper's online protocol over the trace: the model trains
// on epoch i and predicts epoch i+1; no inference happens in the first
// epoch. It returns the bound predictor.
func Train(tr *trace.Trace, cfg Config) (*Predictor, error) {
	p, err := newPredictor(tr, cfg)
	if err != nil {
		return nil, err
	}

	opt := nn.NewAdam(cfg.LearningRate)
	if cfg.DecayRatio > 0 {
		opt.DecayBy = cfg.DecayRatio
	}
	mainTk := p.Model.spans.main
	opt.Track = mainTk

	n := tr.Len()
	for start := 0; start < n; start += cfg.EpochAccesses {
		end := start + cfg.EpochAccesses
		if end > n {
			end = n
		}
		epochSp := mainTk.Begin("epoch")
		if start > 0 {
			predSp := mainTk.Begin("predict_range")
			p.predictRange(start, end)
			predSp.End()
		}
		passes := cfg.PassesPerEpoch
		if passes < 1 {
			passes = 1
		}
		obs := p.Model.obs
		epochT := metrics.StartTimer(obs.epochSec)
		var loss float32
		for pass := 0; pass < passes; pass++ {
			trainSp := mainTk.Begin("train_range")
			loss = p.trainRange(start, end, opt)
			trainSp.End()
		}
		epochT.Stop()
		obs.epochs.Inc()
		p.epochLoss = append(p.epochLoss, loss)
		opt.Decay()
		epochSp.End()
	}
	return p, nil
}

// newPredictor binds an untrained model to a trace: vocabulary, labels and
// the pre-encoded per-access tokens, ready for the epoch loop (or for a
// bench harness that drives batches directly).
func newPredictor(tr *trace.Trace, cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("voyager: empty trace")
	}
	voc := vocab.Build(tr, cfg.vocabOptions())
	model := NewModel(cfg, voc)
	p := &Predictor{
		Cfg:    cfg,
		Model:  model,
		labels: label.Compute(tr),
		preds:  make([][]uint64, tr.Len()),
	}
	p.lines = make([]uint64, tr.Len())
	p.pcs = make([]uint64, tr.Len())
	p.tokens = make([]tok, tr.Len())
	prevLine := trace.Line(tr.Accesses[0].Addr)
	for i, a := range tr.Accesses {
		line := trace.Line(a.Addr)
		pTok, oTok := voc.EncodeAccess(prevLine, line)
		p.lines[i] = line
		p.pcs[i] = a.PC
		p.tokens[i] = tok{pc: voc.PCToken(a.PC), page: pTok, off: oTok}
		prevLine = line
	}
	return p, nil
}

// buildBatch assembles the token sequences for the given trigger positions.
// The returned batch aliases per-predictor scratch reused across calls: it
// stays valid until the next buildBatch on this predictor (callers that need
// a stable copy, like the bench harness, must clone it).
func (p *Predictor) buildBatch(positions []int) []batchToken {
	T := p.Cfg.SeqLen
	for len(p.seqBuf) < T {
		p.seqBuf = append(p.seqBuf, batchToken{})
	}
	seqs := p.seqBuf[:T]
	for s := 0; s < T; s++ {
		seqs[s].pc = growInts(seqs[s].pc, len(positions))
		seqs[s].page = growInts(seqs[s].page, len(positions))
		seqs[s].off = growInts(seqs[s].off, len(positions))
	}
	for b, pos := range positions {
		for s := 0; s < T; s++ {
			idx := pos - T + 1 + s
			if idx < 0 {
				idx = 0
			}
			tk := p.tokens[idx]
			seqs[s].pc[b] = tk.pc
			seqs[s].page[b] = tk.page
			seqs[s].off[b] = tk.off
		}
	}
	return seqs
}

// growInts returns s resized to n elements, reusing its backing array when
// it is large enough (contents are fully overwritten by the caller).
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// schemeWeight is the soft BCE target for each labeling scheme. The
// primary (global) label trains toward 1; secondary localizations train
// toward lower targets so that, when several labels are equally
// predictable, both heads rank the *same* label first — without this, the
// independently predicted page and offset can pair across different labels
// and emit an address no label ever named. When a secondary label is more
// predictable than a noisy global one, its expected activation still wins
// (the paper's "learn the most predictable label").
func schemeWeight(s label.Scheme, single bool) float32 {
	if single {
		return 1
	}
	switch s {
	case label.Global:
		return 1
	case label.PC:
		return 0.9
	case label.CoOccurrence:
		return 0.8
	case label.BasicBlock:
		return 0.7
	case label.Spatial:
		return 0.6
	}
	return 0.5
}

// labelTokens encodes every configured scheme's label for trigger t into
// (page, offset) token positives with soft-target weights; UNK labels and
// labels equal to the trigger line (prefetching the line just accessed is
// useless) are dropped. A token named by several schemes keeps the largest
// weight.
func (p *Predictor) labelTokens(t int) (pagePos, offPos []int, pageW, offW []float32) {
	return p.labelTokensInto(t, nil, nil, nil, nil)
}

// labelTokensInto is labelTokens appending into caller-provided slices
// (pass them length-0 to reuse their backing arrays across triggers).
func (p *Predictor) labelTokensInto(t int, pagePos, offPos []int, pageW, offW []float32) ([]int, []int, []float32, []float32) {
	voc := p.Model.Vocab()
	trigger := p.lines[t]
	single := len(p.Cfg.Schemes) == 1
	for _, s := range p.Cfg.Schemes {
		line, ok := p.labels[t].Get(s)
		if !ok || line == trigger {
			continue
		}
		pTok, oTok := voc.EncodeAccess(trigger, line)
		if pTok == voc.UnkPage() {
			continue
		}
		w := schemeWeight(s, single)
		pagePos, pageW = addWeighted(pagePos, pageW, pTok, w)
		offPos, offW = addWeighted(offPos, offW, oTok, w)
	}
	return pagePos, offPos, pageW, offW
}

// growIntRows / growF32Rows extend a row-slice table to at least n rows,
// keeping existing rows (and their backing arrays) for reuse.
func growIntRows(rows [][]int, n int) [][]int {
	for len(rows) < n {
		rows = append(rows, nil)
	}
	return rows
}

func growF32Rows(rows [][]float32, n int) [][]float32 {
	for len(rows) < n {
		rows = append(rows, nil)
	}
	return rows
}

func addWeighted(toks []int, ws []float32, tok int, w float32) ([]int, []float32) {
	for i, x := range toks {
		if x == tok {
			if w > ws[i] {
				ws[i] = w
			}
			return toks, ws
		}
	}
	return append(toks, tok), append(ws, w)
}

// trainRange trains on accesses [start, end) in order, returning the mean
// batch loss.
func (p *Predictor) trainRange(start, end int, opt *nn.Adam) float32 {
	obs := p.Model.obs
	var positions []int
	var total float64
	batches := 0
	mainTk := p.Model.spans.main
	flush := func() {
		if len(positions) == 0 {
			return
		}
		stepT := metrics.StartTimer(obs.stepSec)
		buildSp := mainTk.Begin("build_batch")
		seqs := p.buildBatch(positions)
		nb := len(positions)
		p.pagePosBuf = growIntRows(p.pagePosBuf, nb)
		p.offPosBuf = growIntRows(p.offPosBuf, nb)
		p.pageWBuf = growF32Rows(p.pageWBuf, nb)
		p.offWBuf = growF32Rows(p.offWBuf, nb)
		pagePos, offPos := p.pagePosBuf[:nb], p.offPosBuf[:nb]
		pageW, offW := p.pageWBuf[:nb], p.offWBuf[:nb]
		for b, pos := range positions {
			pagePos[b], offPos[b], pageW[b], offW[b] = p.labelTokensInto(
				pos, pagePos[b][:0], offPos[b][:0], pageW[b][:0], offW[b][:0])
		}
		buildSp.End()
		batchSp := mainTk.Begin("train_batch")
		loss := p.Model.TrainBatch(seqs, pagePos, offPos, pageW, offW)
		batchSp.End()
		optT := metrics.StartTimer(obs.optSec)
		optSp := mainTk.Begin("optimizer")
		opt.Step(p.Model.Params().All())
		optSp.End()
		optT.Stop()
		if d := stepT.Stop(); d > 0 {
			obs.tokensPerSec.Set(float64(len(positions)*p.Cfg.SeqLen) / d.Seconds())
		}
		total += float64(loss)
		batches++
		p.numTrained += len(positions)
		positions = positions[:0]
	}
	for t := start; t < end; t++ {
		p.scanPage, p.scanOff, p.scanPageW, p.scanOffW = p.labelTokensInto(
			t, p.scanPage[:0], p.scanOff[:0], p.scanPageW[:0], p.scanOffW[:0])
		if len(p.scanPage) == 0 {
			continue // nothing learnable at this position
		}
		positions = append(positions, t)
		if len(positions) == p.Cfg.BatchSize {
			flush()
		}
	}
	flush()
	if batches == 0 {
		return 0
	}
	return float32(total / float64(batches))
}

// predictRange fills preds for accesses [start, end): the prediction made
// *at* access t (for prefetching after t).
func (p *Predictor) predictRange(start, end int) {
	voc := p.Model.Vocab()
	prov := p.Cfg.Provenance
	mainTk := p.Model.spans.main
	// seen and positions are reused across the whole range: at degree 8 a
	// fresh map per access dominated the allocation profile of degree sweeps.
	seen := make(map[uint64]struct{}, 2*p.Cfg.Degree)
	positions := make([]int, 0, p.Cfg.BatchSize)
	for t := start; t < end; t += p.Cfg.BatchSize {
		hi := t + p.Cfg.BatchSize
		if hi > end {
			hi = end
		}
		positions = positions[:0]
		for i := t; i < hi; i++ {
			positions = append(positions, i)
		}
		batchSp := mainTk.Begin("predict_batch")
		seqs := p.buildBatch(positions)
		cands := p.Model.PredictBatch(seqs, p.Cfg.Degree)
		p.Model.obs.predictBatches.Inc()
		for b, pos := range positions {
			var out []uint64
			clear(seen)
			for _, c := range cands[b] {
				line, ok := voc.Decode(p.lines[pos], c.PageTok, c.OffTok)
				if !ok {
					continue
				}
				if _, dup := seen[line]; dup {
					continue
				}
				seen[line] = struct{}{}
				if prov != nil {
					prov.Add(tracing.Decision{
						Index:   pos,
						Rank:    len(out),
						PC:      p.pcs[pos],
						PageTok: c.PageTok,
						OffTok:  c.OffTok,
						Line:    line,
						Schemes: p.schemeMask(pos, line),
					})
				}
				out = append(out, line<<trace.LineBits)
			}
			p.preds[pos] = out
		}
		batchSp.End()
	}
}

// Predictions returns the per-access prefetch predictions (line-aligned
// byte addresses). Accesses in the first epoch have no predictions.
func (p *Predictor) Predictions() [][]uint64 { return p.preds }

// EpochLosses returns the mean training loss per epoch.
func (p *Predictor) EpochLosses() []float32 { return p.epochLoss }

// TrainedSamples returns the number of training samples consumed.
func (p *Predictor) TrainedSamples() int { return p.numTrained }

// AsPrefetcher adapts the predictor for the simulator.
func (p *Predictor) AsPrefetcher() *prefetch.Precomputed {
	return &prefetch.Precomputed{Label: "voyager", Predictions: p.preds}
}

// RepredictAll recomputes predictions for every access with the final
// model (used after offline compression to measure accuracy deltas; the
// online protocol itself never does this).
func (p *Predictor) RepredictAll() {
	p.predictRange(0, len(p.preds))
}

package sim

// DRAM models main memory per Table 3: tRP=tRCD=tCAS=20, 2 channels,
// 8 ranks × 8 banks with 32K-row row buffers, and a bandwidth cap of
// 8 GB/s per core. Latencies are in CPU cycles.
//
// A request to an open row costs tCAS; a row-buffer miss costs
// tRP+tRCD+tCAS. Each transfer additionally occupies its channel for
// BusCycles, which enforces the bandwidth cap and makes over-aggressive
// prefetching hurt.
type DRAM struct {
	TRP, TRCD, TCAS int
	Channels        int
	BanksPerChannel int
	RowsPerBank     int
	BusCycles       int

	channelFree []uint64 // next cycle each channel is free
	openRow     []int32  // per (channel, bank): open row id, -1 if closed

	RowHits   uint64
	RowMisses uint64
	Requests  uint64
}

// NewDRAM builds the Table 3 memory model.
func NewDRAM() *DRAM {
	d := &DRAM{
		TRP: 20, TRCD: 20, TCAS: 20,
		Channels:        2,
		BanksPerChannel: 64, // 8 ranks × 8 banks
		RowsPerBank:     32768,
		// 8 GB/s per core at a nominal 4 GHz core clock: 64 B per 32 ns
		// → one line per ~32 cycles across 2 channels → 16 cycles/channel.
		BusCycles: 16,
	}
	d.channelFree = make([]uint64, d.Channels)
	d.openRow = make([]int32, d.Channels*d.BanksPerChannel)
	for i := range d.openRow {
		d.openRow[i] = -1
	}
	return d
}

// Access issues a line fetch at time `cycle` and returns the cycle the data
// arrives. Line interleaving: channel = line mod Channels, bank = next bits.
func (d *DRAM) Access(line uint64, cycle uint64) uint64 {
	d.Requests++
	ch := int(line) & (d.Channels - 1)
	bank := int(line>>1) & (d.BanksPerChannel - 1)
	row := int32(line >> 7 & uint64(d.RowsPerBank-1))

	start := cycle
	if d.channelFree[ch] > start {
		start = d.channelFree[ch]
	}
	lat := d.TCAS
	idx := ch*d.BanksPerChannel + bank
	if d.openRow[idx] == row {
		d.RowHits++
	} else {
		d.RowMisses++
		lat += d.TRP + d.TRCD
		d.openRow[idx] = row
	}
	d.channelFree[ch] = start + uint64(d.BusCycles)
	return start + uint64(lat)
}

// Reset clears row buffers, queues and statistics.
func (d *DRAM) Reset() {
	for i := range d.channelFree {
		d.channelFree[i] = 0
	}
	for i := range d.openRow {
		d.openRow[i] = -1
	}
	d.RowHits, d.RowMisses, d.Requests = 0, 0, 0
}

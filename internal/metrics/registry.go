package metrics

import (
	"sort"
	"sync"
	"time"

	"voyager/internal/sortkeys"
)

// Registry is a named collection of instruments. Get-or-create accessors are
// safe for concurrent use from worker goroutines; instruments are created
// once and then operated lock-free (counters, gauges) or under their own
// lock (histograms), so the registry mutex is never on the hot path — call
// sites resolve their instruments once, up front.
//
// A nil *Registry is the disabled state: every accessor returns nil, and
// nil instruments are accepted by StartTimer; call sites guard the rest with
// one pointer compare.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	wcounters map[string]*WindowCounter
	whists    map[string]*WindowHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
		wcounters: make(map[string]*WindowCounter),
		whists:    make(map[string]*WindowHistogram),
	}
}

// Counter returns the counter with the given name, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// WindowCounter returns the rolling-window counter with the given name,
// creating it with the given ring size on first use. The ring size is fixed
// at creation; later calls return the existing instrument regardless of the
// windows argument. Returns nil on a nil registry. A window counter
// snapshots as two counter points: "<name>" (cumulative) and
// "<name>_window" (rolling), so the name must not collide with a plain
// counter or another instrument's derived "_window" name.
func (r *Registry) WindowCounter(name string, windows int) *WindowCounter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.wcounters[name]
	if !ok {
		w = NewWindowCounter(windows)
		r.wcounters[name] = w
	}
	return w
}

// WindowHistogram returns the rolling-window histogram with the given name,
// creating it with the given ring size on first use (same fixed-size and
// naming rules as WindowCounter; it snapshots as "<name>" and
// "<name>_window" histogram points). Returns nil on a nil registry.
func (r *Registry) WindowHistogram(name string, windows int) *WindowHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.whists[name]
	if !ok {
		w = NewWindowHistogram(windows)
		r.whists[name] = w
	}
	return w
}

// Snapshot captures every instrument's current value, stable-sorted by name
// within each kind, stamped with the current wall clock. Safe to call while
// workers record. Returns an empty snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	return r.snapshotAt(time.Now().UnixNano())
}

// snapshotAt is Snapshot with an explicit timestamp (tests use a fixed one
// so golden comparisons don't depend on the clock).
func (r *Registry) snapshotAt(ts int64) Snapshot {
	s := Snapshot{TimeUnixNs: ts}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortkeys.Sorted(r.counters) {
		s.Counters = append(s.Counters, CounterPoint{Name: name, Value: r.counters[name].Value()})
	}
	for _, name := range sortkeys.Sorted(r.gauges) {
		s.Gauges = append(s.Gauges, GaugePoint{Name: name, Value: JSONFloat(r.gauges[name].Value())})
	}
	for _, name := range sortkeys.Sorted(r.hists) {
		s.Histograms = append(s.Histograms, histPoint(name, r.hists[name].Counts()))
	}
	// Window instruments export two points each — "<name>" (cumulative) and
	// "<name>_window" (rolling) — which interleave with the plain points, so
	// the per-kind slices are re-sorted to keep Validate's strict ordering.
	for _, name := range sortkeys.Sorted(r.wcounters) {
		w := r.wcounters[name]
		s.Counters = append(s.Counters,
			CounterPoint{Name: name, Value: w.Total()},
			CounterPoint{Name: name + "_window", Value: w.WindowTotal()})
	}
	for _, name := range sortkeys.Sorted(r.whists) {
		w := r.whists[name]
		s.Histograms = append(s.Histograms,
			histPoint(name, w.Cumulative().Counts()),
			histPoint(name+"_window", w.Window().Counts()))
	}
	if len(r.wcounters) > 0 {
		sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	}
	if len(r.whists) > 0 {
		sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	}
	return s
}

// histPoint builds the snapshot point for one histogram's bucket counts.
func histPoint(name string, counts [NumBuckets]uint64) HistogramPoint {
	p := HistogramPoint{Name: name}
	var sum float64
	for i, n := range counts {
		if n != 0 {
			p.Count += n
			sum += float64(n) * bucketMid(i)
			p.Buckets = append(p.Buckets, BucketCount{Bucket: i, Count: n})
		}
	}
	p.Sum = JSONFloat(sum)
	return p
}

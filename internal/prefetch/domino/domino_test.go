package domino

import (
	"testing"

	"voyager/internal/trace"
)

func acc(line uint64) trace.Access {
	return trace.Access{PC: 1, Addr: line << trace.LineBits}
}

// The stream ... A B X ... C B Y ... makes a single-successor table
// mispredict after B, but Domino's two-address key disambiguates.
func TestTwoAddressContextDisambiguates(t *testing.T) {
	p := New(1)
	seq := []uint64{1, 2, 10, 3, 2, 20, 1, 2, 10, 3, 2, 20}
	var preds []uint64
	correct := 0
	for i, l := range seq {
		if preds != nil && trace.Line(preds[0]) == l {
			correct++
		}
		preds = p.Access(i, acc(l))
	}
	// On the second lap (6 accesses) Domino should predict every one.
	if correct < 5 {
		t.Fatalf("domino correct predictions %d, want ≥5", correct)
	}

	// After (1,2) the prediction must be 10; after (3,2) it must be 20.
	p2 := New(1)
	for i, l := range seq {
		p2.Access(i, acc(l))
	}
	p2.Access(100, acc(1))
	out := p2.Access(101, acc(2))
	if len(out) != 1 || trace.Line(out[0]) != 10 {
		t.Fatalf("after context (1,2): got %v, want 10", out)
	}
	p2.Access(102, acc(10))
	p2.Access(103, acc(3))
	out = p2.Access(104, acc(2))
	if len(out) != 1 || trace.Line(out[0]) != 20 {
		t.Fatalf("after context (3,2): got %v, want 20", out)
	}
}

func TestFallbackToSingleKey(t *testing.T) {
	p := New(1)
	// Train 5→6 via a pair the predictor hasn't seen as a pair-key query.
	for i, l := range []uint64{5, 6, 7} {
		p.Access(i, acc(l))
	}
	// Fresh context (99, 5): pair key unknown → falls back to 5→6.
	p.Access(3, acc(99))
	out := p.Access(4, acc(5))
	if len(out) != 1 || trace.Line(out[0]) != 6 {
		t.Fatalf("fallback prediction: %v", out)
	}
}

func TestDegreeChain(t *testing.T) {
	p := New(3)
	seq := []uint64{1, 2, 3, 4, 5, 1, 2}
	var out []uint64
	for i, l := range seq {
		out = p.Access(i, acc(l))
	}
	if len(out) != 3 {
		t.Fatalf("want 3 chained predictions, got %v", out)
	}
	want := []uint64{3, 4, 5}
	for i, w := range want {
		if trace.Line(out[i]) != w {
			t.Fatalf("chain[%d]=%d want %d", i, trace.Line(out[i]), w)
		}
	}
}

func TestColdStart(t *testing.T) {
	p := New(1)
	if out := p.Access(0, acc(1)); out != nil {
		t.Fatalf("cold prediction %v", out)
	}
	if p.Name() != "domino" {
		t.Fatalf("name")
	}
}

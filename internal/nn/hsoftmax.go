package nn

import (
	"fmt"
	"math"
	"math/rand"

	"voyager/internal/sortkeys"
	"voyager/internal/tensor"
)

// HSoftmax is a two-level hierarchical softmax output layer — the §5.5
// "paths to practicality" optimization the paper estimates would cut
// Voyager's training and inference time 3-4× by shrinking the number of
// classes each step touches. Classes are grouped into ⌈√V⌉ clusters;
// training computes a softmax over clusters plus a softmax over the true
// cluster's members (O(√V) work instead of O(V)), and inference scores
// candidates as P(cluster)·P(member|cluster).
type HSoftmax struct {
	V        int // total classes
	Clusters int // number of clusters (⌈√V⌉ by default)
	Size     int // classes per cluster (last cluster may be ragged)

	ClusterHead *Linear   // hidden → Clusters
	MemberHeads []*Linear // per cluster: hidden → members
}

// NewHSoftmax builds a hierarchical softmax for v classes over hidden-width
// inputs. Classes are assigned to clusters contiguously: class c lives in
// cluster c/Size at member index c%Size.
func NewHSoftmax(name string, hidden, v int, rng *rand.Rand) *HSoftmax {
	if v < 2 {
		panic(fmt.Sprintf("nn: HSoftmax needs ≥2 classes, got %d", v))
	}
	clusters := int(math.Ceil(math.Sqrt(float64(v))))
	size := (v + clusters - 1) / clusters
	clusters = (v + size - 1) / size // re-derive to cover exactly v
	h := &HSoftmax{V: v, Clusters: clusters, Size: size}
	h.ClusterHead = NewLinear(fmt.Sprintf("%s.cluster", name), hidden, clusters, rng)
	for c := 0; c < clusters; c++ {
		members := size
		if c == clusters-1 {
			members = v - c*size
		}
		h.MemberHeads = append(h.MemberHeads, NewLinear(fmt.Sprintf("%s.m%d", name, c), hidden, members, rng))
	}
	return h
}

// Params returns all trainable parameters.
func (h *HSoftmax) Params() []*Param {
	out := append([]*Param(nil), h.ClusterHead.Params()...)
	for _, m := range h.MemberHeads {
		out = append(out, m.Params()...)
	}
	return out
}

// clusterOf returns (cluster, member index) of a class.
func (h *HSoftmax) clusterOf(class int) (int, int) {
	return class / h.Size, class % h.Size
}

// Loss computes the hierarchical cross-entropy of the targets given hidden
// states x (batch×hidden): -log P(cluster) - log P(member|cluster). Only
// the cluster head and each row's true-cluster member head receive
// gradients — the O(√V) property.
func (h *HSoftmax) Loss(tp *tensor.Tape, x *tensor.Node, targets []int) *tensor.Node {
	if len(targets) != x.Val.Rows {
		panic("nn: HSoftmax.Loss batch mismatch")
	}
	clusterTargets := make([]int, len(targets))
	// Group rows by cluster so each member head runs once per batch.
	rowsByCluster := make(map[int][]int)
	for r, t := range targets {
		if t < 0 || t >= h.V {
			panic(fmt.Sprintf("nn: HSoftmax target %d out of range [0,%d)", t, h.V))
		}
		c, _ := h.clusterOf(t)
		clusterTargets[r] = c
		rowsByCluster[c] = append(rowsByCluster[c], r)
	}
	clusterLogits := h.ClusterHead.Forward(tp, x)
	loss, _ := tp.SoftmaxCrossEntropy(clusterLogits, clusterTargets)

	// Sorted cluster order: each iteration adds a scaled member loss into the
	// running float32 sum, so iteration order changes the rounded result.
	for _, c := range sortkeys.Sorted(rowsByCluster) {
		rows := rowsByCluster[c]
		sub := gatherRows(tp, x, rows)
		memberTargets := make([]int, len(rows))
		for i, r := range rows {
			_, m := h.clusterOf(targets[r])
			memberTargets[i] = m
		}
		memberLogits := h.MemberHeads[c].Forward(tp, sub)
		mLoss, _ := tp.SoftmaxCrossEntropy(memberLogits, memberTargets)
		// Weight by the share of rows so the total stays a mean per row.
		loss = tp.Add(loss, tp.Scale(mLoss, float32(len(rows))/float32(len(targets))))
	}
	return loss
}

// Predict returns, per row, the top-k classes by P(cluster)·P(member),
// searching only the topClusters highest-probability clusters (the
// approximate decoding that makes inference O(√V)).
func (h *HSoftmax) Predict(x *tensor.Mat, k, topClusters int) [][]int {
	if topClusters < 1 {
		topClusters = 1
	}
	if topClusters > h.Clusters {
		topClusters = h.Clusters
	}
	tp := tensor.NewTape()
	xn := tp.Const(x)
	clusterProbs := tensor.SoftmaxRows(h.ClusterHead.Forward(tp, xn).Val)

	out := make([][]int, x.Rows)
	for r := 0; r < x.Rows; r++ {
		// Top clusters for this row.
		type sc struct {
			idx int
			p   float64
		}
		best := make([]sc, 0, topClusters)
		for c := 0; c < h.Clusters; c++ {
			p := float64(clusterProbs.At(r, c))
			if len(best) < topClusters {
				best = append(best, sc{c, p})
				continue
			}
			worst := 0
			for i := 1; i < len(best); i++ {
				if best[i].p < best[worst].p {
					worst = i
				}
			}
			if p > best[worst].p {
				best[worst] = sc{c, p}
			}
		}
		// Score members of the selected clusters.
		var cands []sc
		row := tensor.NewMat(1, x.Cols)
		copy(row.Data, x.Row(r))
		for _, b := range best {
			tpc := tensor.NewTape()
			logits := h.MemberHeads[b.idx].Forward(tpc, tpc.Const(row))
			probs := tensor.SoftmaxRows(logits.Val)
			for m := 0; m < probs.Cols; m++ {
				cands = append(cands, sc{b.idx*h.Size + m, b.p * float64(probs.At(0, m))})
			}
		}
		// Top-k candidates.
		if k > len(cands) {
			k = len(cands)
		}
		for i := 0; i < k; i++ {
			top := i
			for j := i + 1; j < len(cands); j++ {
				if cands[j].p > cands[top].p {
					top = j
				}
			}
			cands[i], cands[top] = cands[top], cands[i]
		}
		classes := make([]int, k)
		for i := 0; i < k; i++ {
			classes[i] = cands[i].idx
		}
		out[r] = classes
	}
	return out
}

// MACsPerPrediction estimates the layer's inference cost, for comparison
// against a flat hidden×V head (the §5.5 "3-4×" estimate).
func (h *HSoftmax) MACsPerPrediction(hidden, topClusters int) int {
	return hidden*h.Clusters + topClusters*hidden*h.Size
}

// gatherRows selects rows of x as a new node (differentiable scatter-add
// on backward). rows must stay unchanged until Backward completes.
func gatherRows(tp *tensor.Tape, x *tensor.Node, rows []int) *tensor.Node {
	out := tp.NewMat(len(rows), x.Val.Cols)
	for i, r := range rows {
		copy(out.Row(i), x.Val.Row(r))
	}
	return tp.Custom(out, x.RequiresGrad(), func(n *tensor.Node) {
		g := x.EnsureGrad()
		for i, r := range rows {
			dst := g.Row(r)
			for j, v := range n.Grad.Row(i) {
				dst[j] += v
			}
		}
	})
}

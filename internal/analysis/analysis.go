// Package analysis is a small, dependency-free static-analysis framework
// for this module. It exists because the training engine's correctness
// rests on invariants the Go compiler cannot see:
//
//   - bit-identical float32 summation order across worker counts, which a
//     single `for … range` over a map can silently break;
//   - tape-arena *tensor.Mat lifetimes — an arena matrix stored in a struct
//     field outlives Tape.Reset and aliases recycled memory;
//   - per-worker *rand.Rand streams that must never be shared across
//     goroutines;
//   - hot float32 kernels that must not round-trip through float64 outside
//     a handful of intentional accumulators.
//
// The framework deliberately mirrors the shape of golang.org/x/tools'
// go/analysis (Analyzer, Pass, Report) but is built only on go/parser,
// go/types and go/importer so the zero-dependency module stays
// offline-buildable. Analyzers are run by cmd/vetvoyager and by
// TestAnalyzersCleanOnRepo; findings are suppressed line-by-line with
//
//	//lint:ignore <check> <reason>
//
// placed on the flagged line or the line directly above it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the check identifier used in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description shown by `vetvoyager -help`.
	Doc string
	// Run inspects pass.Pkg and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	diags   *[]Diagnostic
	skipped bool
}

// SkipPackage records that the analyzer declined this package (out of its
// configured scope, test-only, …) rather than inspecting it and finding
// nothing. The distinction matters for stale-suppression detection: a
// //lint:ignore for a check that never looked at the package proves
// nothing, whereas one for a check that looked and stayed silent is dead
// weight and gets reported.
func (p *Pass) SkipPackage() { p.skipped = true }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object denoted by id (use or def), or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Defs[id]
}

// Diagnostic is one finding, positioned for editors ("file:line:col").
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Result is the outcome of running a suite over a set of packages.
type Result struct {
	// Findings are the unsuppressed diagnostics, sorted by position.
	Findings []Diagnostic
	// Suppressed counts findings silenced by //lint:ignore directives,
	// per check name.
	Suppressed map[string]int
	// PerCheck counts unsuppressed findings per check name (zero entries
	// included so callers can print a full scoreboard).
	PerCheck map[string]int
}

// Run applies every analyzer to every package (and its external test
// package, if loaded) and applies //lint:ignore suppression.
func Run(pkgs []*Package, analyzers []*Analyzer) *Result {
	res := &Result{
		Suppressed: make(map[string]int),
		PerCheck:   make(map[string]int),
	}
	for _, a := range analyzers {
		res.PerCheck[a.Name] = 0
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		for _, sub := range []*Package{pkg, pkg.XTest} {
			if sub == nil {
				continue
			}
			dirs := sub.ignoreDirectives()
			subRan := make(map[string]bool, len(analyzers))
			for _, a := range analyzers {
				var diags []Diagnostic
				pass := &Pass{Analyzer: a, Fset: sub.Fset, Pkg: sub, diags: &diags}
				a.Run(pass)
				if !pass.skipped {
					subRan[a.Name] = true
				}
				for _, d := range diags {
					if dirs.suppresses(d) {
						res.Suppressed[d.Check]++
						continue
					}
					all = append(all, d)
				}
			}
			// Malformed directives are findings themselves: a reasonless
			// ignore hides a real invariant with no audit trail. So are
			// stale ones — a suppression that outlives its finding will
			// swallow the next, unrelated finding on that line.
			all = append(all, dirs.malformed...)
			for _, sd := range dirs.stale(subRan) {
				if !dirs.suppresses(sd) {
					all = append(all, sd)
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Check < all[j].Check
	})
	res.Findings = all
	for _, d := range all {
		res.PerCheck[d.Check]++
	}
	return res
}

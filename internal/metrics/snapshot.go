package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// JSONFloat is a float64 that survives JSON round trips even when
// non-finite: NaN and ±Inf — which encoding/json rejects outright — are
// encoded as the quoted strings "NaN", "+Inf" and "-Inf", and both forms are
// accepted on decode. Snapshot lines must never fail to serialize just
// because a gauge divided by zero somewhere.
type JSONFloat float64

// MarshalJSON implements json.Marshaler.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *JSONFloat) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"NaN"`:
		*f = JSONFloat(math.NaN())
		return nil
	case `"+Inf"`, `"Inf"`:
		*f = JSONFloat(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = JSONFloat(math.Inf(-1))
		return nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return fmt.Errorf("metrics: bad float %q", b)
	}
	*f = JSONFloat(v)
	return nil
}

// CounterPoint is one counter's value in a snapshot.
type CounterPoint struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugePoint is one gauge's value in a snapshot.
type GaugePoint struct {
	Name  string    `json:"name"`
	Value JSONFloat `json:"value"`
}

// BucketCount is one non-zero histogram bucket (sparse encoding: snapshots
// carry only occupied buckets of the fixed 64-bucket geometry).
type BucketCount struct {
	Bucket int    `json:"b"`
	Count  uint64 `json:"n"`
}

// HistogramPoint is one histogram's state in a snapshot.
type HistogramPoint struct {
	Name    string        `json:"name"`
	Count   uint64        `json:"count"`
	Sum     JSONFloat     `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is one observation of a whole registry: every instrument,
// stable-sorted by name within its kind, at one timestamp. The NDJSON
// stream a run emits is a sequence of these, one per line.
type Snapshot struct {
	TimeUnixNs int64            `json:"ts_unix_ns"`
	Counters   []CounterPoint   `json:"counters,omitempty"`
	Gauges     []GaugePoint     `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
}

// Counter returns the named counter total (0, false when absent).
func (s *Snapshot) Counter(name string) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns the named gauge value (0, false when absent).
func (s *Snapshot) Gauge(name string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return float64(g.Value), true
		}
	}
	return 0, false
}

// Histogram returns the named histogram point (nil when absent).
func (s *Snapshot) Histogram(name string) *HistogramPoint {
	for i := range s.Histograms {
		if s.Histograms[i].Name == name {
			return &s.Histograms[i]
		}
	}
	return nil
}

// MarshalNDJSON renders the snapshot as a single newline-terminated JSON
// line, the unit of the streaming format.
func (s *Snapshot) MarshalNDJSON() ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Validate enforces the canonical snapshot shape the exporter produces:
// names present, strictly sorted and unique within each kind; bucket
// indices in range, strictly ascending, with counts that are non-zero and
// sum to the histogram's count. Accepted snapshots therefore re-marshal to
// the same canonical line, which the fuzz harness exploits for its
// round-trip oracle.
func (s *Snapshot) Validate() error {
	for i, c := range s.Counters {
		if c.Name == "" {
			return fmt.Errorf("metrics: counter %d has no name", i)
		}
		if i > 0 && s.Counters[i-1].Name >= c.Name {
			return fmt.Errorf("metrics: counters not strictly sorted at %q", c.Name)
		}
	}
	for i, g := range s.Gauges {
		if g.Name == "" {
			return fmt.Errorf("metrics: gauge %d has no name", i)
		}
		if i > 0 && s.Gauges[i-1].Name >= g.Name {
			return fmt.Errorf("metrics: gauges not strictly sorted at %q", g.Name)
		}
	}
	for i, h := range s.Histograms {
		if h.Name == "" {
			return fmt.Errorf("metrics: histogram %d has no name", i)
		}
		if i > 0 && s.Histograms[i-1].Name >= h.Name {
			return fmt.Errorf("metrics: histograms not strictly sorted at %q", h.Name)
		}
		var total uint64
		for j, b := range h.Buckets {
			if b.Bucket < 0 || b.Bucket >= NumBuckets {
				return fmt.Errorf("metrics: histogram %q bucket %d out of range", h.Name, b.Bucket)
			}
			if j > 0 && h.Buckets[j-1].Bucket >= b.Bucket {
				return fmt.Errorf("metrics: histogram %q buckets not ascending", h.Name)
			}
			if b.Count == 0 {
				return fmt.Errorf("metrics: histogram %q carries an empty bucket", h.Name)
			}
			total += b.Count
		}
		if total != h.Count {
			return fmt.Errorf("metrics: histogram %q bucket counts sum to %d, count says %d",
				h.Name, total, h.Count)
		}
	}
	return nil
}

// ParseSnapshot decodes and validates one NDJSON line. It is the entry
// point of the comparison tooling and therefore hardened against hostile
// input: arbitrary bytes must produce an error, never a panic (see
// FuzzParseSnapshot).
func ParseSnapshot(line []byte) (*Snapshot, error) {
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return nil, fmt.Errorf("metrics: empty snapshot line")
	}
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var s Snapshot
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("metrics: bad snapshot line: %w", err)
	}
	// Trailing garbage after the JSON value is a truncation/corruption sign.
	if dec.More() {
		return nil, fmt.Errorf("metrics: trailing data after snapshot")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ReadSnapshots decodes a whole NDJSON stream, skipping blank lines. The
// first malformed line aborts with an error naming its line number.
func ReadSnapshots(r io.Reader) ([]*Snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var out []*Snapshot
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		s, err := ParseSnapshot(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

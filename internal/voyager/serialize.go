package voyager

import "io"

// SaveWeights writes the trained model's weights (the §5.5 profile-driven
// deployment path: train offline, ship the weights to the inference
// engine).
func (p *Predictor) SaveWeights(w io.Writer) error {
	_, err := p.Model.Params().WriteTo(w)
	return err
}

// LoadWeights restores weights into a model built with the same
// configuration and vocabulary (vocabulary construction is deterministic
// given the same trace and options, so rebuilding via NewModel +
// vocab.Build reproduces the original shapes).
func (m *Model) LoadWeights(r io.Reader) error {
	_, err := m.Params().ReadFrom(r)
	return err
}

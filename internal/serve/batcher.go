// The admission queue and batcher: model-tier requests are posted to a
// buffered channel; one batcher goroutine coalesces them into PredictBatch
// calls.
//
// Batching policy: the batcher blocks for the first request, then fills the
// batch from the queue until it holds MaxBatch rows or MaxWait has elapsed
// since the first row was taken (MaxWait 0 = greedy: take whatever is
// already buffered and run immediately). Under saturation the timer never
// fires — the queue refills faster than inference drains it and batches run
// full; under light load a lone request pays at most MaxWait of added
// latency. Because inference is row-independent, the policy affects only
// latency, never results (the batching-invariance test drives the same
// streams through disparate MaxBatch/MaxWait settings and byte-compares).
package serve

import (
	"time"

	"voyager/internal/voyager"
)

// pending is one queued model-tier request: a snapshot of the stream's
// token window plus the trigger line needed to decode candidates. The
// handler blocks on reply (buffered, capacity 1, so the batcher never
// blocks answering).
type pending struct {
	row   []tok3 // seqLen triples, oldest first
	line  uint64 // trigger cache line
	enq   time.Time
	reply chan []voyager.Candidate
}

// batchLoop is the single goroutine that talks to the model. It exits when
// Close closes the queue, after answering everything still buffered.
func (s *Server) batchLoop() {
	defer s.loops.Done()
	batch := make([]*pending, 0, s.cfg.MaxBatch)
	tb := voyager.NewTokenBatch(s.seqLen)
	pcs := make([]int32, s.seqLen)
	pages := make([]int32, s.seqLen)
	offs := make([]int32, s.seqLen)
	var timer *time.Timer
	for {
		p, ok := <-s.queue
		if !ok {
			return
		}
		batch = append(batch[:0], p)
		if s.cfg.MaxWait > 0 {
			if timer == nil {
				timer = time.NewTimer(s.cfg.MaxWait)
			} else {
				timer.Reset(s.cfg.MaxWait)
			}
		collect:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case q, ok := <-s.queue:
					if !ok {
						break collect // drained; run what we have, exit next
					}
					batch = append(batch, q)
				case <-timer.C:
					break collect
				}
			}
			if !timer.Stop() {
				select { // drain a fired timer so Reset starts clean
				case <-timer.C:
				default:
				}
			}
		} else {
		greedy:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case q, ok := <-s.queue:
					if !ok {
						break greedy
					}
					batch = append(batch, q)
				default:
					break greedy
				}
			}
		}
		s.runBatch(batch, tb, pcs, pages, offs)
	}
}

// runBatch runs one coalesced PredictBatch call and answers each request.
func (s *Server) runBatch(batch []*pending, tb *voyager.TokenBatch, pcs, pages, offs []int32) {
	now := time.Now()
	for _, p := range batch {
		s.obs.queueWait.Observe(now.Sub(p.enq).Seconds())
	}
	s.obs.batches.Inc()
	s.obs.batchRows.Add(uint64(len(batch)))
	s.obs.batchFill.Observe(float64(len(batch)))

	sp := s.obs.batchTk.Begin("predict_batch")
	tb.Reset()
	for _, p := range batch {
		for i, t := range p.row {
			pcs[i], pages[i], offs[i] = t.pc, t.page, t.off
		}
		tb.Add(pcs, pages, offs)
	}
	cands := s.cfg.Model.PredictTokenBatch(tb, s.degree)
	sp.End()

	for i, p := range batch {
		p.reply <- cands[i] // buffered; never blocks
	}
}

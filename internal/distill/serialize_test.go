package distill

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

func compiledTable(t *testing.T) *Table {
	t.Helper()
	return Compile(trainedPredictor(t), 0, 4000, testParams())
}

func tableBytes(t *testing.T, tab *Table) []byte {
	t.Helper()
	var b bytes.Buffer
	if _, err := tab.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return b.Bytes()
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tab := compiledTable(t)
	path := filepath.Join(t.TempDir(), "cycle.vydt")
	if err := tab.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got.Params != tab.Params || got.VocabFP != tab.VocabFP {
		t.Fatalf("header mismatch: %+v fp=%#x vs %+v fp=%#x",
			got.Params, got.VocabFP, tab.Params, tab.VocabFP)
	}
	if got.Stats() != tab.Stats() {
		t.Fatalf("stats mismatch: %+v vs %+v", got.Stats(), tab.Stats())
	}
	if !slices.Equal(got.main.keys, tab.main.keys) || !slices.Equal(got.main.slots, tab.main.slots) ||
		!slices.Equal(got.markov.keys, tab.markov.keys) || !slices.Equal(got.markov.slots, tab.markov.slots) {
		t.Fatalf("payload mismatch after round trip")
	}
}

// Golden byte-stability: one table serialized twice, and the same
// (seed, trace, params) compiled twice, must produce identical files.
func TestSerializationByteStable(t *testing.T) {
	tab := compiledTable(t)
	b1, b2 := tableBytes(t, tab), tableBytes(t, tab)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same table serialized twice differs")
	}
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "a.vydt"), filepath.Join(dir, "b.vydt")
	if err := tab.Save(p1); err != nil {
		t.Fatal(err)
	}
	if err := tab.Save(p2); err != nil {
		t.Fatal(err)
	}
	f1, _ := os.ReadFile(p1)
	f2, _ := os.ReadFile(p2)
	if !bytes.Equal(f1, f2) || len(f1) == 0 {
		t.Fatalf("saved files differ (%d vs %d bytes)", len(f1), len(f2))
	}
	if !bytes.Equal(f1, b1) {
		t.Fatalf("Save output differs from WriteTo output")
	}
}

func TestCorruptedChecksumRejected(t *testing.T) {
	raw := tableBytes(t, compiledTable(t))
	// Flip one payload byte mid-file: header still parses, checksum must not.
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0xff
	if _, err := Load(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupted payload: err = %v, want checksum mismatch", err)
	}
	// Flipping the trailing checksum itself is also a checksum failure.
	bad = append([]byte(nil), raw...)
	bad[len(bad)-1] ^= 0x01
	if _, err := Load(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupted trailer: err = %v, want checksum mismatch", err)
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	raw := tableBytes(t, compiledTable(t))
	bad := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(bad[4:], Version+7)
	if _, err := Load(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "version mismatch") {
		t.Fatalf("future version: err = %v, want version mismatch", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	raw := tableBytes(t, compiledTable(t))
	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, err := Load(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "not a distilled table") {
		t.Fatalf("bad magic: err = %v", err)
	}
}

func TestCorruptHeaderParamsRejected(t *testing.T) {
	raw := tableBytes(t, compiledTable(t))
	bad := append([]byte(nil), raw...)
	// An absurd bucket count must be rejected before any allocation, even
	// though the checksum would catch it later.
	binary.LittleEndian.PutUint32(bad[16:], 31)
	if _, err := Load(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "corrupt header") {
		t.Fatalf("oversized header: err = %v", err)
	}
}

func TestTruncatedFileRejected(t *testing.T) {
	raw := tableBytes(t, compiledTable(t))
	for _, n := range []int{0, 10, 40, len(raw) / 2, len(raw) - 4} {
		if _, err := Load(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", n)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.vydt")); err == nil {
		t.Fatalf("missing file accepted")
	}
}

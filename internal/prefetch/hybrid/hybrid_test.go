package hybrid

import (
	"testing"

	"voyager/internal/trace"
)

func acc(pc, line uint64) trace.Access {
	return trace.Access{PC: pc, Addr: line << trace.LineBits}
}

func TestDegree1FallsBackToISB(t *testing.T) {
	p := New(1)
	if p.bo != nil {
		t.Fatalf("degree-1 hybrid must not include BO (paper Figure 9 note)")
	}
	// Behaves exactly like ISB degree 1.
	for i, l := range []uint64{10, 20, 30} {
		p.Access(i, acc(1, l))
	}
	out := p.Access(3, acc(1, 10))
	if len(out) != 1 || trace.Line(out[0]) != 20 {
		t.Fatalf("hybrid degree-1: %v", out)
	}
}

func TestDegreeSplit(t *testing.T) {
	p := New(4)
	if p.isb.Degree != 2 {
		t.Fatalf("isb degree %d, want 2", p.isb.Degree)
	}
	if p.bo == nil || p.bo.Degree != 2 {
		t.Fatalf("bo degree wrong")
	}
}

func TestMergeDedupsAndCaps(t *testing.T) {
	addrs := []uint64{64, 128, 64, 192, 256, 320}
	out := Dedup(addrs, 3)
	if len(out) != 3 {
		t.Fatalf("capped length %d", len(out))
	}
	if trace.Line(out[0]) != 1 || trace.Line(out[1]) != 2 || trace.Line(out[2]) != 3 {
		t.Fatalf("dedup order wrong: %v", out)
	}
	// Short inputs pass through.
	single := []uint64{64}
	if got := Dedup(single, 4); len(got) != 1 {
		t.Fatalf("single passthrough")
	}
}

func TestHybridCoversBothPatterns(t *testing.T) {
	p := New(4)
	// Stride stream (BO learnable) interleaved with a temporal pattern.
	line := uint64(10_000)
	for i := 0; i < 30000; i++ {
		p.Access(i, acc(9, line))
		line += 1
	}
	out := p.Access(30001, acc(9, line))
	if len(out) == 0 {
		t.Fatalf("hybrid produced nothing on stride stream")
	}
	if p.Name() != "isb+bo" {
		t.Fatalf("name")
	}
}

// Per-connection request handling. One goroutine per connection reads
// frames, advances sessions, and answers — inline for the fast tier, via
// the batcher for the model tier.
//
// Per-connection scratch (frame buffers, row snapshot, reply channel,
// history window) is allocated once at connection setup and reused for
// every request, so the steady-state fast path allocates nothing: the
// exact-latency window (session advance through candidates ready) runs
// without triggering the collector even at bench stream counts.
package serve

import (
	"bufio"
	"math"
	"net"
	"time"

	"voyager/internal/distill"
	"voyager/internal/serve/quality"
	"voyager/internal/trace"
	"voyager/internal/tracing"
	"voyager/internal/voyager"
)

// connState is one handler's reusable scratch.
type connState struct {
	resp    Response
	out     []byte // encoded response frame
	rowBuf  []tok3 // model-tier window snapshot
	histBuf []distill.TokPair
	lineBuf []uint64 // predicted lines handed to the quality scorer
	pend    pending  // reused: the handler blocks on reply before the next request
	reply   chan []voyager.Candidate

	streamID uint64 // cached session lookup
	sess     *session

	rpcTk   *tracing.Track // lazily created on the first traced request
	rpcInit bool
}

// handleConn serves one connection until EOF, a protocol error, or Close.
func (s *Server) handleConn(c net.Conn, id uint64) {
	defer s.handlers.Done()
	defer s.untrackConn(id)
	defer func() { _ = c.Close() }()

	br := bufio.NewReaderSize(c, 4096)
	bw := bufio.NewWriterSize(c, 4096)
	tk := s.obs.connTrack(id)
	cs := &connState{
		out:     make([]byte, 0, 4+respHeaderLen+16*candLen),
		rowBuf:  make([]tok3, s.seqLen),
		histBuf: make([]distill.TokPair, s.histLen),
		reply:   make(chan []voyager.Candidate, 1),
	}
	if s.cfg.Quality != nil {
		cs.lineBuf = make([]uint64, 0, s.degree)
	}
	var in []byte
	for {
		payload, err := ReadFrame(br, in)
		if err != nil {
			return // EOF, read deadline from Close, or oversized frame
		}
		in = payload
		req, err := DecodeRequest(payload)
		if err != nil {
			// Malformed frame: tell this client and drop this connection;
			// the daemon and every other stream keep serving.
			s.obs.errors.Inc()
			cs.resp = Response{Status: StatusError, Err: err.Error()}
			_ = WriteFrame(bw, EncodeResponse(cs.out[:0], &cs.resp))
			return
		}
		switch req.Op {
		case OpPing:
			cs.resp = Response{Status: StatusOK}
		case OpClose:
			s.sessions.remove(req.Stream)
			if cs.streamID == req.Stream {
				cs.sess = nil
			}
			cs.resp = Response{Status: StatusOK}
		case OpPredict:
			if s.closing.Load() {
				s.obs.errors.Inc()
				cs.resp = Response{Status: StatusError, Err: "serve: shutting down"}
				_ = WriteFrame(bw, EncodeResponse(cs.out[:0], &cs.resp))
				return
			}
			sp := tk.Begin("request")
			if req.HasCtx {
				if !cs.rpcInit {
					cs.rpcTk = s.obs.rpcTrack(id)
					cs.rpcInit = true
				}
				cs.rpcTk.AsyncInstant("srv_recv", req.SpanID)
			}
			s.predict(cs, req)
			if req.HasCtx {
				cs.rpcTk.AsyncInstant("srv_reply", req.SpanID)
			}
			sp.End()
		}
		if err := WriteFrame(bw, EncodeResponse(cs.out[:0], &cs.resp)); err != nil {
			return
		}
	}
}

// predict answers one OpPredict into cs.resp.
func (s *Server) predict(cs *connState, req Request) {
	s.obs.requests.Inc()
	st := cs.sess
	if st == nil || cs.streamID != req.Stream || st.gone.Load() {
		st = s.sessions.get(req.Stream)
		cs.sess, cs.streamID = st, req.Stream
	}
	if req.Flags&FlagFast != 0 && s.cfg.Table != nil {
		s.predictFast(cs, st, req)
		return
	}
	s.predictModel(cs, st, req)
}

// predictModel snapshots the stream's token window, queues it for the
// batcher, and decodes the model's candidates against the trigger line.
func (s *Server) predictModel(cs *connState, st *session, req Request) {
	t0 := time.Now()
	st.mu.Lock()
	st.advance(s.voc, req.PC, req.Addr)
	st.copyWindow(cs.rowBuf, s.seqLen)
	line := st.line
	st.mu.Unlock()
	st.lastUsed.Store(t0.UnixNano())

	cs.pend = pending{row: cs.rowBuf, line: line, enq: t0, reply: cs.reply,
		traced: req.HasCtx, spanID: req.SpanID}
	s.queue <- &cs.pend
	cands := <-cs.reply

	cs.resp.Status = StatusOK
	cs.resp.Tier = TierModel
	cs.resp.Err = ""
	cs.resp.Cands = cs.resp.Cands[:0]
	for _, c := range cands {
		addr := uint64(0)
		if ln, ok := s.voc.Decode(line, c.PageTok, c.OffTok); ok {
			addr = ln << trace.LineBits
		}
		cs.resp.Cands = append(cs.resp.Cands, Candidate{
			PageTok:   int32(c.PageTok),
			OffTok:    int32(c.OffTok),
			ScoreBits: math.Float64bits(c.Score),
			Addr:      addr,
		})
	}
	lat := time.Since(t0)
	s.obs.modelReqs.Inc()
	s.obs.reqSec.Observe(lat.Seconds())
	s.cfg.ModelLatency.record(lat.Nanoseconds())

	if s.cfg.Quality != nil {
		st.qs.Score(line, cs.predictedLines(cs.resp.Cands), quality.TierModel)
	}
}

// predictFast answers inline from the distilled table, mirroring
// distilled.Prefetcher.Access exactly: decode slots against the trigger,
// skip the trigger line, dedup, cap at degree, and degrade to next-line on
// a full table miss. The candidate records carry the decoded address (the
// fast tier's contract) plus the slot's token ids; ScoreBits is 0 — the
// table stores f16 probabilities, not model scores.
func (s *Server) predictFast(cs *connState, st *session, req Request) {
	t0 := time.Now()
	st.mu.Lock()
	pcTok, line := st.advance(s.voc, req.PC, req.Addr)
	st.copyPairs(cs.histBuf, s.histLen)
	trig := st.ring[st.head]
	st.mu.Unlock()

	key := distill.ContextKey(int(pcTok), cs.histBuf)
	slots, tier := s.cfg.Table.Lookup(key, distill.PairKey(int(trig.page), int(trig.off)))

	cs.resp.Status = StatusOK
	cs.resp.Tier = TierFast
	cs.resp.Err = ""
	out := cs.resp.Cands[:0]
	for _, slot := range slots {
		if slot == 0 {
			break
		}
		pg, off, _ := distill.DecodeSlot(slot)
		cand, ok := s.voc.Decode(line, pg, off)
		if !ok || cand == line {
			continue
		}
		addr := cand << trace.LineBits
		if dupAddr(out, addr) {
			continue
		}
		out = append(out, Candidate{PageTok: int32(pg), OffTok: int32(off), Addr: addr})
		if len(out) == s.degree {
			break
		}
	}
	if len(out) == 0 && tier == distill.TierMiss {
		out = append(out, Candidate{PageTok: -1, OffTok: -1, Addr: (line + 1) << trace.LineBits})
	}
	cs.resp.Cands = out
	lat := time.Since(t0)

	st.lastUsed.Store(t0.UnixNano())
	s.obs.fastReqs.Inc()
	s.obs.tierCounts[tier].Inc()
	s.obs.fastSec.Observe(lat.Seconds())
	s.cfg.FastLatency.record(lat.Nanoseconds())

	// Quality work runs strictly after the latency record above: scoring
	// and the shadow-sample decision are off the measured fast path, and
	// the shadow model pass itself happens on the batcher goroutine.
	if s.cfg.Quality != nil {
		st.qs.Score(line, cs.predictedLines(out), quality.TierFast)
		if s.cfg.Quality.ShadowTick() {
			var fastTop uint64
			if len(out) > 0 {
				fastTop = out[0].Addr
			}
			s.enqueueShadow(st, fastTop)
		}
	}
}

// predictedLines converts a response's candidates into the cache lines the
// quality scorer matches against, reusing connection scratch. Candidates
// whose tokens did not decode (Addr 0) are unscoreable and are skipped —
// the scorer never sees them, so they don't dilute conservation.
func (cs *connState) predictedLines(cands []Candidate) []uint64 {
	lines := cs.lineBuf[:0]
	for _, c := range cands {
		if c.Addr != 0 {
			lines = append(lines, c.Addr>>trace.LineBits)
		}
	}
	cs.lineBuf = lines
	return lines
}

// enqueueShadow posts a model-tier shadow job for a just-answered fast-tier
// request. The job snapshots the session window *after* the request's
// advance — the same context predictModel would have used — into a fresh
// buffer (the job outlives this handler's scratch). The enqueue never
// blocks: a full admission queue drops the sample and counts the drop,
// because shadow work must never stall a handler.
func (s *Server) enqueueShadow(st *session, fastTop uint64) {
	p := &pending{row: make([]tok3, s.seqLen), enq: time.Now(),
		shadow: true, fastTop: fastTop}
	st.mu.Lock()
	st.copyWindow(p.row, s.seqLen)
	p.line = st.line
	st.mu.Unlock()
	select {
	case s.queue <- p:
	default:
		s.cfg.Quality.RecordShadowDropped()
	}
}

func dupAddr(cands []Candidate, addr uint64) bool {
	for _, c := range cands {
		if c.Addr == addr {
			return true
		}
	}
	return false
}

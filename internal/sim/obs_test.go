package sim

import (
	"testing"

	"voyager/internal/eval"
	"voyager/internal/metrics"
	"voyager/internal/prefetch"
	"voyager/internal/workloads"
)

// TestInstrumentedRunMatchesResult runs the same trace on an instrumented
// and an uninstrumented machine: the Result structs must be identical
// (instrumentation observes, never perturbs) and the exported counters must
// agree with the Result's own accounting.
func TestInstrumentedRunMatchesResult(t *testing.T) {
	tr, err := workloads.Generate("pr", workloads.Config{Seed: 3, Scale: 1, MaxAccesses: 6000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScaledConfig()

	plain := NewMachine(cfg).Run(tr, prefetch.Nil{})

	reg := metrics.NewRegistry()
	m := NewMachine(cfg)
	m.Instrument(reg)
	res := m.Run(tr, prefetch.Nil{})

	if res != plain {
		t.Fatalf("instrumented result differs:\n  with:    %+v\n  without: %+v", res, plain)
	}

	snap := reg.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}
	checks := []struct {
		name string
		want uint64
	}{
		{"sim_llc_misses_total", res.LLCDemandMisses},
		{"sim_prefetches_issued_total", res.PrefetchesIssued},
		{"sim_prefetches_useful_total", res.PrefetchesUseful},
		{"sim_dram_requests_total", res.DRAMRequests},
	}
	for _, c := range checks {
		if got, _ := snap.Counter(c.name); got != c.want {
			t.Errorf("%s = %d, want %d (Result)", c.name, got, c.want)
		}
	}
	// Every demand access hits exactly one level or goes to DRAM; L1 totals
	// must cover the whole trace.
	l1h, _ := snap.Counter("sim_l1_hits_total")
	l1m, _ := snap.Counter("sim_l1_misses_total")
	if l1h+l1m != uint64(tr.Len()) {
		t.Errorf("L1 hits+misses = %d, want %d accesses", l1h+l1m, tr.Len())
	}
	// The demand-miss DRAM latency histogram saw every demand DRAM request.
	if h := snap.Histogram("sim_dram_latency_cycles"); h == nil || h.Count != res.DRAMRequests {
		t.Errorf("dram latency observations = %v, want %d", h, res.DRAMRequests)
	}
	if ipc, ok := snap.Gauge("sim_ipc"); !ok || ipc != res.IPC {
		t.Errorf("sim_ipc = %v (%v), want %v", ipc, ok, res.IPC)
	}
}

// TestEvalRecordGauges pins the eval-side gauge export: breakdown fractions
// and the unified metric land under stable dotted names.
func TestEvalRecordGauges(t *testing.T) {
	tr, err := workloads.Generate("pr", workloads.Config{Seed: 3, Scale: 1, MaxAccesses: 3000})
	if err != nil {
		t.Fatal(err)
	}
	preds := make([][]uint64, tr.Len())
	for i := 0; i+1 < tr.Len(); i++ {
		preds[i] = []uint64{tr.Accesses[i+1].Addr} // perfect next-line oracle
	}
	b := eval.Breakdown(tr, preds, eval.DefaultWindow, 0)
	b.Prefetcher = "oracle"

	reg := metrics.NewRegistry()
	b.Record(reg)
	eval.RecordUnified(reg, tr.Name, "oracle", 0.5)

	snap := reg.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}
	if v, ok := snap.Gauge("eval_coverage.pr.oracle"); !ok || v != b.Coverage() {
		t.Errorf("eval_coverage.pr.oracle = %v (%v), want %v", v, ok, b.Coverage())
	}
	if v, ok := snap.Gauge("eval_frac.pr.oracle.covered"); !ok || v != b.Frac[eval.Covered] {
		t.Errorf("eval_frac.pr.oracle.covered = %v (%v), want %v", v, ok, b.Frac[eval.Covered])
	}
	if v, ok := snap.Gauge("eval_unified.pr.oracle"); !ok || v != 0.5 {
		t.Errorf("eval_unified.pr.oracle = %v (%v)", v, ok)
	}
}

// Package sms implements a Spatial Memory Streaming prefetcher (Somogyi et
// al., ISCA 2006) from the paper's related work (§2.1): it learns recurring
// spatial footprints — the bit pattern of lines touched within a page-sized
// region during one generation — indexed by the (PC, trigger-offset) that
// first touched the region, and replays the footprint when the same trigger
// recurs in a new region.
package sms

import "voyager/internal/trace"

// regionState tracks the footprint of an active generation.
type regionState struct {
	trigger   uint64 // (pc << 6) | trigger offset
	footprint uint64 // bit k set ⇒ line offset k touched
}

// Prefetcher is an SMS-style spatial footprint predictor.
type Prefetcher struct {
	Degree int

	// active generations per page.
	active map[uint64]*regionState
	// pht: learned footprints by trigger signature.
	pht map[uint64]uint64
	// fifo of active pages for generation termination (capacity bound).
	fifo []uint64
}

// MaxActive caps concurrently tracked regions (the filter/accumulation
// table size in the original design).
const MaxActive = 64

// New returns an SMS prefetcher with the given degree.
func New(degree int) *Prefetcher {
	if degree < 1 {
		degree = 1
	}
	return &Prefetcher{
		Degree: degree,
		active: make(map[uint64]*regionState),
		pht:    make(map[uint64]uint64),
	}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "sms" }

func signature(pc, offset uint64) uint64 { return pc<<trace.OffsetBits | offset }

// Access accumulates footprints and, on a region's first touch, replays the
// footprint learned for the trigger signature.
func (p *Prefetcher) Access(_ int, a trace.Access) []uint64 {
	page := trace.Page(a.Addr)
	offset := trace.Offset(a.Addr)

	if st, ok := p.active[page]; ok {
		st.footprint |= 1 << offset
		return nil
	}

	// New generation: evict the oldest if at capacity, committing its
	// footprint to the pattern history table.
	if len(p.fifo) >= MaxActive {
		old := p.fifo[0]
		p.fifo = p.fifo[1:]
		if st, ok := p.active[old]; ok {
			p.pht[st.trigger] = st.footprint
			delete(p.active, old)
		}
	}
	sig := signature(a.PC, offset)
	p.active[page] = &regionState{trigger: sig, footprint: 1 << offset}
	p.fifo = append(p.fifo, page)

	// Predict: replay the learned footprint for this trigger.
	fp, ok := p.pht[sig]
	if !ok {
		return nil
	}
	out := make([]uint64, 0, p.Degree)
	for k := uint64(0); k < trace.NumOffsets && len(out) < p.Degree; k++ {
		if k == offset || fp&(1<<k) == 0 {
			continue
		}
		out = append(out, trace.Join(page, k)|0)
	}
	return out
}

// Entries returns the pattern-history-table size.
func (p *Prefetcher) Entries() int { return len(p.pht) }

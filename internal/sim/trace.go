package sim

import (
	"sort"

	"voyager/internal/tracing"
)

// simTrace is the machine's execution-span and provenance state, attached
// via Machine.Trace / Machine.Provenance and nil when both are off — the
// hot path pays one nil compare per hook. The simulator is single-threaded,
// so all tracks and maps here are written from one goroutine.
//
// Span model: each cache level gets its own explicit-clock row (timestamps
// are simulated cycles, deterministic by construction) carrying miss
// instants; the LLC row additionally carries the linked async spans — one
// per DRAM fill — from issue ("prefetch" or "demand_fill") through the
// "fill" instant at arrival to an end event named for the outcome (useful,
// late, evicted, resident). Prefetch outcomes are simultaneously resolved
// into the decision log, which is how a Voyager prediction's provenance
// meets its simulated fate.
type simTrace struct {
	l1Tk, l2Tk, llcTk *tracing.Track

	prov *tracing.DecisionLog

	// pending tracks every prefetch whose outcome is unresolved, by line.
	// An eviction while the fill is still in flight only *marks* the entry:
	// a later demand can still merge with the fill (the simulator counts
	// that useful-late), so eviction defers to the next resolution point —
	// demand merge, line reuse, or end of run.
	pending map[uint64]*pendingPrefetch
	nextID  uint64 // async span ids, per machine (= per trace process)
}

type pendingPrefetch struct {
	dec     int    // decision id, -1 when provenance is off
	id      uint64 // async span id (0 when tracing is off)
	evicted bool   // evicted from the LLC before a demand touched it
}

func (m *Machine) ensureST() *simTrace {
	if m.st == nil {
		m.st = &simTrace{pending: make(map[uint64]*pendingPrefetch)}
	}
	return m.st
}

// Trace attaches execution-span rows for this machine's cache levels under
// the given process name (use distinct names — e.g. "sim/voyager",
// "sim/isb" — when several machines share one tracer, so async span ids
// stay per-process unique). Call before Run; nil tracer is a no-op.
func (m *Machine) Trace(tr *tracing.Tracer, process string) {
	if tr == nil {
		return
	}
	st := m.ensureST()
	st.l1Tk = tr.ExplicitTrack(process, "L1D")
	st.l2Tk = tr.ExplicitTrack(process, "L2")
	st.llcTk = tr.ExplicitTrack(process, "LLC")
}

// Provenance attaches the decision log that predictions were stamped into;
// the run resolves each issued prefetch's outcome against it. For
// prefetchers that never stamp decisions (the table-based baselines) bare
// decisions are auto-created, so the table still shows the outcome
// distribution under the "unmatched" scheme. Call before Run; nil is a
// no-op.
func (m *Machine) Provenance(log *tracing.DecisionLog) {
	if log == nil {
		return
	}
	m.ensureST().prov = log
}

// notePrefetchIssue opens the async span and pending entry for a prefetch
// the machine actually sent to DRAM. idx is the trigger's raw trace index.
func (st *simTrace) notePrefetchIssue(idx int, line uint64, cycle, ready uint64) {
	if st == nil {
		return
	}
	// A stale pending entry here means the previous prefetch of this line
	// landed and was evicted unused before anything touched it (its MSHR
	// entry expired, so the demand-merge paths can no longer see it): close
	// it out before the new span takes over the line.
	if _, ok := st.pending[line]; ok {
		st.resolve(line, tracing.OutcomeEvicted, 0, cycle)
	}
	p := &pendingPrefetch{dec: -1}
	if st.prov != nil {
		p.dec = st.prov.Ensure(idx, line)
	}
	if st.llcTk != nil {
		st.nextID++
		p.id = st.nextID
		st.llcTk.AsyncBeginAt("prefetch", p.id, int64(cycle))
		st.llcTk.AsyncInstantAt("fill", p.id, int64(ready))
	}
	st.pending[line] = p
}

// noteDrop records a prefetch the machine declined (already cached or
// already in flight) — no span: nothing happened on the timeline.
func (st *simTrace) noteDrop(idx int, line uint64) {
	if st == nil || st.prov == nil {
		return
	}
	id := st.prov.Ensure(idx, line)
	if st.prov.Outcome(id) == tracing.OutcomeNone {
		st.prov.SetOutcome(id, tracing.OutcomeDropped, 0)
	}
}

// resolve closes a pending prefetch with its final outcome. wait is the
// lateness in cycles (OutcomeLate only).
func (st *simTrace) resolve(line uint64, o tracing.Outcome, wait, cycle uint64) {
	if st == nil {
		return
	}
	p, ok := st.pending[line]
	if !ok {
		return
	}
	delete(st.pending, line)
	if p.dec >= 0 {
		st.prov.SetOutcome(p.dec, o, wait)
	}
	if p.id != 0 {
		st.llcTk.AsyncEndAt(o.String(), p.id, int64(cycle))
	}
}

// noteEvict marks line's pending prefetch (if any) as evicted. If its fill
// is still in flight the final outcome stays open — a demand merge can
// still turn it late-useful; otherwise it resolves evicted immediately.
func (m *Machine) noteEvict(line uint64, cycle uint64) {
	st := m.st
	if st == nil {
		return
	}
	p, ok := st.pending[line]
	if !ok {
		return
	}
	if ready, inFlight := m.inFlight[line]; inFlight && ready > cycle {
		p.evicted = true
		return
	}
	st.resolve(line, tracing.OutcomeEvicted, 0, cycle)
}

// noteDemandMiss records an uncovered LLC miss as its own async fill span.
func (st *simTrace) noteDemandMiss(cycle, ready uint64) {
	if st == nil || st.llcTk == nil {
		return
	}
	st.nextID++
	st.llcTk.AsyncBeginAt("demand_fill", st.nextID, int64(cycle))
	st.llcTk.AsyncEndAt("demand_fill", st.nextID, int64(ready))
}

// instantL1/instantL2/instantLLC record per-level miss instants; all are
// no-ops when tracing is off.
func (st *simTrace) instantL1(name string, cycle uint64) {
	if st == nil {
		return
	}
	st.l1Tk.InstantAt(name, int64(cycle))
}

func (st *simTrace) instantL2(name string, cycle uint64) {
	if st == nil {
		return
	}
	st.l2Tk.InstantAt(name, int64(cycle))
}

func (st *simTrace) instantLLC(name string, cycle uint64) {
	if st == nil {
		return
	}
	st.llcTk.InstantAt(name, int64(cycle))
}

// finishRun resolves every still-pending prefetch at the end of a run:
// lines marked evicted close as evicted, the rest are resident — cached,
// never demanded. Resolution order is ascending issue order (span id, with
// provenance-only entries ordered by decision id), keeping the event
// stream and outcome assignment deterministic despite the map.
func (m *Machine) finishRun(finalCycle uint64) {
	st := m.st
	if st == nil {
		return
	}
	lines := make([]uint64, 0, len(st.pending))
	for line := range st.pending {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool {
		a, b := st.pending[lines[i]], st.pending[lines[j]]
		if a.id != b.id {
			return a.id < b.id
		}
		return a.dec < b.dec
	})
	for _, line := range lines {
		o := tracing.OutcomeResident
		if st.pending[line].evicted {
			o = tracing.OutcomeEvicted
		}
		st.resolve(line, o, 0, finalCycle)
	}
}

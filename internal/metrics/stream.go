package metrics

import (
	"io"
	"sync"
	"time"
)

// Streamer appends registry snapshots to a writer as NDJSON, one line per
// Flush. Start adds a background ticker so long runs emit a time series
// without the run loop having to care; Close stops the ticker, writes one
// final line and reports the first write error encountered.
type Streamer struct {
	mu  sync.Mutex
	reg *Registry
	w   io.Writer
	err error

	done chan struct{}
	wg   sync.WaitGroup
}

// NewStreamer wraps a writer. The caller owns the writer's lifetime (the
// streamer never closes it).
func NewStreamer(reg *Registry, w io.Writer) *Streamer {
	return &Streamer{reg: reg, w: w}
}

// Flush writes one snapshot line. Errors are sticky: after the first failed
// write every subsequent Flush returns the same error without writing.
func (s *Streamer) Flush() error {
	snap := s.reg.Snapshot()
	line, err := snap.MarshalNDJSON()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if err == nil {
		_, err = s.w.Write(line)
	}
	s.err = err
	return err
}

// Start launches a goroutine that flushes every interval until Close.
// Calling Start twice is a no-op.
func (s *Streamer) Start(interval time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done != nil {
		return
	}
	s.done = make(chan struct{})
	s.wg.Add(1)
	go func(done chan struct{}) {
		defer s.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				_ = s.Flush() // sticky error: Close reports the first failure
			case <-done:
				return
			}
		}
	}(s.done)
}

// Close stops the ticker goroutine (if any), writes a final snapshot line
// and returns the sticky error state.
func (s *Streamer) Close() error {
	s.mu.Lock()
	done := s.done
	s.done = nil
	s.mu.Unlock()
	if done != nil {
		close(done)
		s.wg.Wait()
	}
	return s.Flush()
}

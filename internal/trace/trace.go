// Package trace defines the memory-access trace format shared by the
// workload generators, the cache simulator, and the prefetchers.
//
// A trace is a sequence of load records (PC, virtual address, instruction
// index). Addresses are split hierarchically the way the paper does:
// a 64-byte cache line within a 4 KB page gives 64 line-offsets per page,
// so Addr → (Page, Offset) with Offset ∈ [0, 64).
//
// Naming note: this package holds *memory-access traces* — the data the
// model trains on. Execution-timeline spans (where a run spends its time)
// live in internal/tracing; the two share nothing but the word. The same
// split shows up on the command lines: -trace is a memory-trace input file,
// -trace-out is a span-timeline output file.
package trace

import (
	"fmt"
	"sort"
)

// Address geometry. The paper uses 64-byte lines and 4 KB pages, giving 64
// line offsets per page (Section 1: "the number of unique offsets is fixed
// at 64").
const (
	LineBits   = 6
	PageBits   = 12
	LineSize   = 1 << LineBits
	PageSize   = 1 << PageBits
	OffsetBits = PageBits - LineBits // 6 → 64 offsets
	NumOffsets = 1 << OffsetBits
)

// Access is one memory load: the program counter that issued it, the
// virtual byte address it touched, and the index of the instruction in the
// dynamic instruction stream (used for epoch boundaries and the core model's
// IPC accounting).
type Access struct {
	PC   uint64
	Addr uint64
	Inst uint64
}

// Line returns the cache-line number of a byte address.
func Line(addr uint64) uint64 { return addr >> LineBits }

// LineAddr returns the first byte address of the line containing addr.
func LineAddr(addr uint64) uint64 { return addr &^ uint64(LineSize-1) }

// Page returns the page number of a byte address.
func Page(addr uint64) uint64 { return addr >> PageBits }

// Offset returns the line offset within the page, in [0, NumOffsets).
func Offset(addr uint64) uint64 { return (addr >> LineBits) & (NumOffsets - 1) }

// Join reconstructs a line-aligned byte address from a page and offset.
func Join(page, offset uint64) uint64 {
	return page<<PageBits | (offset&(NumOffsets-1))<<LineBits
}

// Trace is a named sequence of accesses.
type Trace struct {
	Name string
	// Instructions is the total dynamic instruction count the accesses were
	// drawn from (≥ the Inst of the last access). Used to compute IPC.
	Instructions uint64
	Accesses     []Access
}

// Append adds an access.
func (t *Trace) Append(pc, addr, inst uint64) {
	t.Accesses = append(t.Accesses, Access{PC: pc, Addr: addr, Inst: inst})
}

// Len returns the number of accesses.
func (t *Trace) Len() int { return len(t.Accesses) }

// Slice returns a shallow sub-trace covering accesses [lo, hi).
func (t *Trace) Slice(lo, hi int) *Trace {
	return &Trace{Name: t.Name, Instructions: t.Instructions, Accesses: t.Accesses[lo:hi]}
}

// Stats summarizes a trace the way the paper's Table 2 does.
type Stats struct {
	Name      string
	Accesses  int
	PCs       int // unique program counters
	Addresses int // unique cache lines (the paper's "# Addresses")
	Pages     int // unique pages
}

// ComputeStats scans the trace once and returns its Table 2 row.
func ComputeStats(t *Trace) Stats {
	pcs := make(map[uint64]struct{})
	lines := make(map[uint64]struct{})
	pages := make(map[uint64]struct{})
	for _, a := range t.Accesses {
		pcs[a.PC] = struct{}{}
		lines[Line(a.Addr)] = struct{}{}
		pages[Page(a.Addr)] = struct{}{}
	}
	return Stats{
		Name:      t.Name,
		Accesses:  len(t.Accesses),
		PCs:       len(pcs),
		Addresses: len(lines),
		Pages:     len(pages),
	}
}

// String formats the stats as a Table 2 style row.
func (s Stats) String() string {
	return fmt.Sprintf("%-10s pcs=%-6d addrs=%-8d pages=%-6d accesses=%d",
		s.Name, s.PCs, s.Addresses, s.Pages, s.Accesses)
}

// LineFrequencies returns the access count per cache line.
func LineFrequencies(t *Trace) map[uint64]int {
	freq := make(map[uint64]int)
	for _, a := range t.Accesses {
		freq[Line(a.Addr)]++
	}
	return freq
}

// TopPCs returns the n most frequent PCs in descending order of count;
// useful for workload inspection tools.
func TopPCs(t *Trace, n int) []uint64 {
	count := make(map[uint64]int)
	for _, a := range t.Accesses {
		count[a.PC]++
	}
	pcs := make([]uint64, 0, len(count))
	for pc := range count {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool {
		if count[pcs[i]] != count[pcs[j]] {
			return count[pcs[i]] > count[pcs[j]]
		}
		return pcs[i] < pcs[j]
	})
	if n < len(pcs) {
		pcs = pcs[:n]
	}
	return pcs
}

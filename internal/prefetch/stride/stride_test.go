package stride

import (
	"testing"

	"voyager/internal/trace"
)

func acc(pc, line uint64) trace.Access {
	return trace.Access{PC: pc, Addr: line << trace.LineBits}
}

func TestNextLine(t *testing.T) {
	p := NewNextLine(2)
	out := p.Access(0, acc(1, 100))
	if len(out) != 2 || trace.Line(out[0]) != 101 || trace.Line(out[1]) != 102 {
		t.Fatalf("next-line: %v", out)
	}
	if p.Name() != "next-line" {
		t.Fatalf("name")
	}
	if NewNextLine(0).Degree != 1 {
		t.Fatalf("degree clamp")
	}
}

func TestIPStrideLearnsConstantStride(t *testing.T) {
	p := NewIP(1)
	line := uint64(1000)
	var out []uint64
	for i := 0; i < 10; i++ {
		out = p.Access(i, acc(7, line))
		line += 3
	}
	if len(out) != 1 || trace.Line(out[0]) != line-3+3 {
		t.Fatalf("stride-3 prediction: %v (want %d)", out, line)
	}
}

func TestIPStridePerPCIsolation(t *testing.T) {
	p := NewIP(1)
	// PC 1 strides +2, PC 2 strides +5, interleaved.
	l1, l2 := uint64(100), uint64(9000)
	var o1, o2 []uint64
	for i := 0; i < 12; i++ {
		o1 = p.Access(i, acc(1, l1))
		o2 = p.Access(i, acc(2, l2))
		l1 += 2
		l2 += 5
	}
	if len(o1) != 1 || trace.Line(o1[0]) != l1 {
		t.Fatalf("pc1 prediction %v, want %d", o1, l1)
	}
	if len(o2) != 1 || trace.Line(o2[0]) != l2 {
		t.Fatalf("pc2 prediction %v, want %d", o2, l2)
	}
	if p.Entries() != 2 {
		t.Fatalf("entries %d", p.Entries())
	}
}

func TestIPStrideNoConfidenceNoPrefetch(t *testing.T) {
	p := NewIP(1)
	// Random walk: confidence must stay low.
	lines := []uint64{10, 500, 37, 9000, 123, 4567}
	issued := 0
	for i, l := range lines {
		if out := p.Access(i, acc(3, l)); len(out) > 0 {
			issued++
		}
	}
	if issued != 0 {
		t.Fatalf("random walk triggered %d prefetches", issued)
	}
}

func TestIPStrideDegreeChain(t *testing.T) {
	p := NewIP(3)
	line := uint64(50)
	var out []uint64
	for i := 0; i < 10; i++ {
		out = p.Access(i, acc(1, line))
		line += 4
	}
	if len(out) != 3 {
		t.Fatalf("degree-3: %v", out)
	}
	for k, a := range out {
		want := line - 4 + uint64(4*(k+1))
		if trace.Line(a) != want {
			t.Fatalf("chain[%d]=%d want %d", k, trace.Line(a), want)
		}
	}
}
